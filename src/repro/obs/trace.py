"""Request-scoped distributed tracing for the serving fleet.

A *trace* is one logical request's journey — client send, server
admission, fused-window flush, shard scoring, WAL append/fsync/ship,
follower apply — stitched together by a ``trace_id`` that rides request
frames as an optional ``"trace"`` payload field.  Each hop contributes
*spans*: ``(trace_id, span_id, parent_id, name, ts, dur_ms, attrs)``
records collected into a per-:class:`Tracer` ring buffer and optionally
appended to a JSONL sink file.

Two propagation mechanisms, deliberately distinct:

* **Across the wire / across tasks** — explicit: a span's
  :meth:`Span.context` is stamped into the outgoing frame payload
  (:meth:`TraceContext.to_wire`) and the receiving side parents its
  spans on :meth:`TraceContext.from_wire`.  Asyncio code always uses
  this form; thread-locals cannot follow interleaved coroutines.
* **Down a synchronous call chain** — implicit: entering a span (``with
  tracer.start(...)``) makes it the thread's *active* span, so deeper
  layers that were never handed a tracer (the WAL log inside a commit,
  the sharded scorer inside a fused dispatch, a chaos shim firing a
  fault) can attach children via :func:`maybe_span` or annotate the
  current span via :func:`annotate_active` with zero configuration.
  When no span is active both are no-ops costing one thread-local read
  — which is what keeps tracing-disabled serving at full speed.

Ids are random hex (:mod:`secrets`): 16 bytes for trace ids, 8 for span
ids.  Timestamps are wall-clock (``time.time``) for cross-host
correlation; durations come from ``time.perf_counter`` so they are
immune to clock steps.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["TraceContext", "Span", "Tracer", "active_span",
           "annotate_active", "maybe_span", "NULL_SPAN"]

#: The ``hello`` feature token both peers must advertise before trace
#: context rides their request frames (see
#: :func:`repro.serving.net.protocol.negotiated_features`).
TRACE_FEATURE = "trace"

#: Reserved request-payload key carrying the wire form of a context.
TRACE_KEY = "trace"


def _new_trace_id() -> str:
    return secrets.token_hex(16)


def _new_span_id() -> str:
    return secrets.token_hex(8)


class TraceContext:
    """The wire-portable half of a span: ``(trace_id, span_id)``.

    ``span_id`` is the id the *receiving* side should parent on.
    """

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = str(trace_id)
        self.span_id = str(span_id)

    def to_wire(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, value) -> Optional["TraceContext"]:
        """Parse a payload field; ``None`` for absent/malformed values.

        Tolerant by design: a peer sending garbage trace context must
        degrade to an untraced request, never to an error.
        """
        if not isinstance(value, dict):
            return None
        trace_id = value.get("trace_id")
        span_id = value.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str) \
                or not trace_id or not span_id:
            return None
        return cls(trace_id, span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id[:8]}…/{self.span_id[:8]}…)"


_ACTIVE = threading.local()


def active_span() -> Optional["Span"]:
    """The span currently entered on this thread, if any."""
    return getattr(_ACTIVE, "span", None)


def annotate_active(key: str, value) -> None:
    """Append an annotation to the active span; no-op when none.

    This is the funnel the chaos layer uses: a fired fault annotates
    whatever span is live at the fault site, so the trace shows exactly
    which request the fault landed on.
    """
    span = active_span()
    if span is not None:
        span.annotate(key, value)


class _NullSpan:
    """Inactive stand-in so callers need no ``if span`` branches."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def annotate(self, key: str, value) -> None:
        return None

    def set_attr(self, key: str, value) -> None:
        return None

    def finish(self, dur_ms=None) -> None:
        return None


_NULL_SPAN = _NullSpan()

#: Shared inert span, for callers that want span-shaped plumbing with
#: tracing off (``with NULL_SPAN: ...`` costs nothing).
NULL_SPAN = _NULL_SPAN


def maybe_span(name: str, **attrs) -> Union["Span", _NullSpan]:
    """A child of the active span, or an inert no-op when none.

    The zero-configuration instrumentation point for layers below the
    transport (WAL log, sharded scorer): when a traced request is live
    on this thread the child attaches to it; otherwise the cost is one
    thread-local read.
    """
    parent = active_span()
    if parent is None:
        return _NULL_SPAN
    return parent.tracer.start(name, parent=parent, attrs=attrs)


class Span:
    """One timed operation within a trace (use as a context manager).

    Entering makes it the thread's active span; exiting restores the
    previous one and records the span into its tracer.  ``finish`` is
    idempotent, so explicitly-managed spans (asyncio paths) may call it
    directly without ``with``.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "ts", "attrs", "_start", "_finished", "_previous")

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: str, parent_id: Optional[str],
                 attrs: Optional[Dict[str, object]] = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.name = str(name)
        self.ts = time.time()
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self._start = time.perf_counter()
        self._finished = False
        self._previous: Optional[Span] = None

    def context(self) -> TraceContext:
        """The context downstream spans (and frames) parent on."""
        return TraceContext(self.trace_id, self.span_id)

    def annotate(self, key: str, value) -> None:
        """Append ``value`` under ``attrs[key]`` (always a list).

        List semantics keep repeated events — two faults firing inside
        one append, say — individually visible instead of last-wins.
        """
        bucket = self.attrs.get(key)
        if not isinstance(bucket, list):
            bucket = [] if bucket is None else [bucket]
            self.attrs[key] = bucket
        bucket.append(value)

    def set_attr(self, key: str, value) -> None:
        self.attrs[key] = value

    def finish(self, dur_ms: Optional[float] = None) -> None:
        """Record the span (idempotent); ``dur_ms`` overrides the clock
        for spans reconstructed from externally-measured intervals."""
        if self._finished:
            return
        self._finished = True
        measured = (time.perf_counter() - self._start) * 1000.0
        self.tracer._record(self, float(dur_ms) if dur_ms is not None
                            else measured)

    def __enter__(self) -> "Span":
        self._previous = active_span()
        _ACTIVE.span = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _ACTIVE.span = self._previous
        self._previous = None
        if exc is not None and "error" not in self.attrs:
            self.attrs["error"] = repr(exc)
        self.finish()


class Tracer:
    """Span factory plus a bounded collector (thread-safe).

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest finished spans fall off first.
    sink_dir:
        When set, every finished span is also appended as one JSON line
        to ``<sink_dir>/<sink_name>`` (directory created on demand) —
        the ``--trace-dir`` artifact the smoke jobs upload.
    sink_name:
        Sink file name; defaults to ``trace-<pid>.jsonl`` so several
        processes can share one directory.
    """

    def __init__(self, capacity: int = 4096,
                 sink_dir: Optional[str] = None,
                 sink_name: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=int(capacity))
        self.capacity = int(capacity)
        self.n_started = 0
        self.n_finished = 0
        self.n_evicted = 0
        self._sink = None
        self.sink_path: Optional[Path] = None
        if sink_dir is not None:
            directory = Path(sink_dir)
            directory.mkdir(parents=True, exist_ok=True)
            self.sink_path = directory / (
                sink_name if sink_name is not None
                else f"trace-{os.getpid()}.jsonl")
            self._sink = open(self.sink_path, "a", encoding="utf8")

    # -- span construction -------------------------------------------------

    def start(self, name: str,
              parent: Optional[Union[Span, TraceContext]] = None,
              attrs: Optional[Dict[str, object]] = None) -> Span:
        """A new span: a fresh trace root, or a child of ``parent``
        (another span, or a :class:`TraceContext` off the wire)."""
        if parent is None:
            trace_id, parent_id = _new_trace_id(), None
        elif isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        with self._lock:
            self.n_started += 1
        return Span(self, name, trace_id, parent_id, attrs)

    def emit(self, name: str,
             parent: Optional[Union[Span, TraceContext]] = None,
             dur_ms: float = 0.0, ts: Optional[float] = None,
             attrs: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """Record an already-measured interval as a completed span.

        For intervals whose start predates the decision to trace them
        (the server's queue-wait, measured from frame arrival) — the
        span is created and finished in one step with the given
        duration.  Returns the recorded dict (ids included).
        """
        span = self.start(name, parent=parent, attrs=attrs)
        if ts is not None:
            span.ts = float(ts)
        span.finish(dur_ms=dur_ms)
        return {"trace_id": span.trace_id, "span_id": span.span_id,
                "parent_id": span.parent_id, "name": span.name,
                "ts": round(span.ts, 6), "dur_ms": round(float(dur_ms), 6),
                "attrs": span.attrs}

    # -- collection --------------------------------------------------------

    def _record(self, span: Span, dur_ms: float) -> None:
        entry = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "ts": round(span.ts, 6),
            "dur_ms": round(dur_ms, 6),
            "attrs": span.attrs,
        }
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.n_evicted += 1
            self._spans.append(entry)
            self.n_finished += 1
            if self._sink is not None:
                self._sink.write(json.dumps(entry, sort_keys=True,
                                            default=str) + "\n")
                self._sink.flush()

    def spans(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Finished spans, oldest first (copies; safe to mutate)."""
        with self._lock:
            entries = list(self._spans)
        if limit is not None:
            entries = entries[-int(limit):]
        return [dict(entry) for entry in entries]

    def drain(self) -> List[Dict[str, object]]:
        """Return and clear every buffered span."""
        with self._lock:
            entries = list(self._spans)
            self._spans.clear()
        return [dict(entry) for entry in entries]

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "started": self.n_started,
                "finished": self.n_finished,
                "buffered": len(self._spans),
                "evicted": self.n_evicted,
                "capacity": self.capacity,
                "sink": str(self.sink_path) if self.sink_path else None,
            }

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                self._sink.close()
                self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
