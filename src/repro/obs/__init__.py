"""Observability substrate: metrics registry + request-scoped tracing.

Two small, dependency-free modules shared by every serving component:

* :mod:`repro.obs.metrics` — process-wide, thread-safe counters, gauges
  and fixed-bucket latency histograms under dotted names
  (``serving.server.queue_wait_ms``, ``wal.append.fsync_ms``, ...), plus
  provider registration so the existing per-component ``stats()`` dicts
  surface under the same namespace.
* :mod:`repro.obs.trace` — ``trace_id``/``span_id``/``parent_id``
  request tracing with a ring-buffer collector and an optional JSONL
  sink.  Trace context rides request frames as an optional payload
  field, negotiated over the ``hello`` handshake exactly like the
  binary payload encoding, so old peers keep working unchanged.

Nothing in here imports from :mod:`repro.serving` — the serving stack
depends on ``repro.obs``, never the other way around.
"""

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    REGISTRY,
    dotted_stats,
)
from repro.obs.trace import (
    Span,
    TraceContext,
    Tracer,
    active_span,
    annotate_active,
    maybe_span,
)

__all__ = [
    "LATENCY_BUCKETS_MS", "MetricsRegistry", "REGISTRY", "dotted_stats",
    "Span", "TraceContext", "Tracer", "active_span", "annotate_active",
    "maybe_span",
]
