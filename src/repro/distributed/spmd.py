"""Per-rank SPMD training loop: one process, one rank, a real wire.

The orchestrated sampler (:mod:`repro.distributed.sampler`) steps every
simulated rank from a single process — fine over
:class:`~repro.mpi.simmpi.SimCommWorld`, impossible over real sockets
where each rank lives in its own process.  :func:`run_spmd` is the same
algorithm re-expressed as the program *one* rank runs: every rank owns
its partition block, updates it through the shared engine, exchanges
refreshed rows through its communicator, and rank 0 additionally
evaluates the chain.

**Bit-parity with the orchestrated run** is the design constraint, and
it falls out of four decisions:

* *Replicated RNG.*  Every rank holds an identical generator seeded the
  same way and performs the identical draw sequence the orchestrated
  loop performs on its single stream: ``initialize_state``, then per
  sweep one normal-wishart draw and one full noise matrix per entity
  class.  Ranks draw the *full* noise matrix (not just their slice) so
  the streams stay in lockstep — noise is O(items × K) doubles per
  sweep, trivially affordable next to the factor exchange itself.
* *Rank-order reductions.*  ``SocketComm.allreduce`` gathers to rank 0
  and reduces with :class:`~repro.mpi.simmpi.ReduceOp` in rank order —
  the exact floating-point association the simulated world uses.
* *Exact wire.*  Factor rows, sufficient statistics and posterior
  parameters cross the wire as binary float64 frames
  (:mod:`repro.serving.net.protocol`), bit-preserving by construction.
* *Plan-counted receives.*  A phase's receive loop knows exactly which
  item ids must arrive (the communication plan inverted for this rank)
  and runs until they all have.  Received rows land in disjoint slices,
  so arrival order — the one thing a real network does not guarantee —
  cannot affect the result; an unexpected id raises instead (a wrong
  plan must fail loudly, exactly like the orchestrated run's
  pending-message audit).

Checkpoint/resume stays an orchestrated-run feature: snapshots capture
the *gathered* authoritative state, which only rank 0 holds here, and
restart coordination across real processes belongs to a launcher, not a
sampler.  ``run_spmd`` refuses checkpoint options rather than silently
dropping them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.gibbs import BPMFResult
from repro.core.metrics import rmse
from repro.core.predict import PosteriorPredictor
from repro.core.priors import GaussianPrior
from repro.core.state import BPMFState, initialize_state
from repro.core.wishart import (
    NormalWishartPrior,
    normal_wishart_posterior,
    normal_wishart_posterior_from_stats,
    sample_normal_wishart,
)
from repro.distributed.comm_plan import CommunicationPlan, build_comm_plan
from repro.distributed.partition import Partition, partition_ratings
from repro.mpi.buffers import BufferStats, SendBuffer
from repro.obs.trace import maybe_span
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError

__all__ = ["run_spmd", "expected_incoming", "run_local_socket_world"]

_PHASE_TAGS = {"movies": 1, "users": 2}
_GATHER_BASE_TAG = 100
_EVAL_TAG = 50


def expected_incoming(owner: np.ndarray,
                      destinations: List[np.ndarray],
                      rank: int) -> Set[int]:
    """Item ids this rank must receive in one phase.

    The communication plan lists, per item, the ranks that need its
    refreshed row; inverting it for ``rank`` gives the exact receive
    set, which is what lets the phase's receive loop *count* instead of
    guessing when the exchange is done.
    """
    expected: Set[int] = set()
    for item, dests in enumerate(destinations):
        if int(owner[item]) != rank and rank in dests:
            expected.add(item)
    return expected


def _bcast_posterior(comm, posterior: Optional[NormalWishartPrior],
                     root: int = 0) -> NormalWishartPrior:
    """Share a normal-wishart posterior bit-exactly from ``root``.

    The arrays ride the binary frame form (exact); the scalars ride
    JSON, which round-trips IEEE doubles exactly.
    """
    if comm.rank == root:
        assert posterior is not None
        payload = {"mu0": posterior.mu0, "beta0": float(posterior.beta0),
                   "W0": posterior.W0, "nu0": float(posterior.nu0)}
        comm.bcast(payload, root=root)
        return posterior
    payload = comm.bcast(None, root=root)
    return NormalWishartPrior(
        mu0=np.array(payload["mu0"], dtype=np.float64),
        beta0=float(payload["beta0"]),
        W0=np.array(payload["W0"], dtype=np.float64),
        nu0=float(payload["nu0"]),
    )


class _SpmdRank:
    """The state one rank carries through an SPMD run."""

    def __init__(self, sampler, comm, train: RatingMatrix,
                 partition: Partition, plan: CommunicationPlan,
                 rng: np.random.Generator, state: BPMFState):
        self.sampler = sampler
        self.comm = comm
        self.rank = comm.rank
        self.train = train
        self.partition = partition
        self.plan = plan
        self.rng = rng
        self.user_factors = state.user_factors.copy()
        self.movie_factors = state.movie_factors.copy()
        self.buffer_stats = BufferStats()
        self.items_updated = 0
        self.expected: Dict[str, Set[int]] = {
            "movies": expected_incoming(partition.movie_owner,
                                        plan.movie_destinations, self.rank),
            "users": expected_incoming(partition.user_owner,
                                       plan.user_destinations, self.rank),
        }

    # -- hyperparameters ---------------------------------------------------

    def sample_prior(self, entity: str, iteration: int) -> GaussianPrior:
        """The SPMD half of ``DistributedGibbsSampler._sample_prior``.

        Both modes end with *every* rank holding the identical posterior
        and drawing ``sample_normal_wishart`` from its own (lockstep)
        generator — the draw that the orchestrated loop performs once on
        its single stream.
        """
        config, options = self.sampler.config, self.sampler.options
        comm = self.comm
        hyperprior = (config.movie_hyperprior if entity == "movies"
                      else config.user_hyperprior)
        owned = (self.partition.movies_of(self.rank) if entity == "movies"
                 else self.partition.users_of(self.rank))
        matrix = (self.movie_factors if entity == "movies"
                  else self.user_factors)
        rows = matrix[owned]

        if options.hyper_mode == "gather":
            tag = _GATHER_BASE_TAG + _PHASE_TAGS[entity]
            if self.rank == 0:
                n_items = (self.partition.n_movies if entity == "movies"
                           else self.partition.n_users)
                full = np.zeros((n_items, config.num_latent))
                full[owned] = rows
                for _ in range(comm.size - 1):
                    got_owned, got_rows = comm.recv(tag=tag)
                    full[np.asarray(got_owned)] = np.asarray(got_rows)
                posterior = normal_wishart_posterior(full, hyperprior)
                posterior = _bcast_posterior(comm, posterior)
            else:
                comm.isend((owned, rows), dest=0, tag=tag,
                           description=f"gather-{entity}")
                posterior = _bcast_posterior(comm, None)
        else:
            k = config.num_latent
            stats = np.concatenate([
                [float(rows.shape[0])],
                rows.sum(axis=0) if rows.size else np.zeros(k),
                (rows.T @ rows).ravel() if rows.size else np.zeros(k * k),
            ])
            result = comm.allreduce(stats, key=f"hyper-{entity}-{iteration}")
            n = int(round(result[0]))
            factor_sum = result[1:1 + k]
            factor_outer = result[1 + k:].reshape(k, k)
            posterior = normal_wishart_posterior_from_stats(
                n, factor_sum, factor_outer, hyperprior)
        return sample_normal_wishart(posterior, self.rng)

    # -- one phase ---------------------------------------------------------

    def run_phase(self, entity: str, prior: GaussianPrior,
                  noise: np.ndarray) -> None:
        """Update the owned block, then exchange refreshed rows."""
        config, options = self.sampler.config, self.sampler.options
        comm = self.comm
        tag = _PHASE_TAGS[entity]
        if entity == "movies":
            owned_of = self.partition.movies_of
            destinations = self.plan.movie_destinations
            axis = self.train.by_movie
            target, source = self.movie_factors, self.user_factors
        else:
            owned_of = self.partition.users_of
            destinations = self.plan.user_destinations
            axis = self.train.by_user
            target, source = self.user_factors, self.movie_factors

        owned = np.asarray(owned_of(self.rank), dtype=np.int64)
        self.items_updated += self.sampler._engine.update_items(
            target, source, axis, prior, config.alpha, noise, items=owned)

        with maybe_span("mpi.exchange", phase=entity, rank=self.rank):
            buffers: Dict[int, SendBuffer] = {}

            def flush(dest: int, ids: np.ndarray,
                      payload: np.ndarray) -> None:
                comm.isend((ids, payload), dest=dest, tag=tag,
                           description=f"{entity}-update")

            for item in owned:
                item = int(item)
                for dest in destinations[item]:
                    dest = int(dest)
                    if dest not in buffers:
                        buffers[dest] = SendBuffer(
                            dest, options.buffer_capacity,
                            config.num_latent, on_flush=flush)
                    buffers[dest].add(item, target[item])
            for buffer in buffers.values():
                buffer.flush(partial=True)
                self.buffer_stats = self.buffer_stats.merge(buffer.stats)

            # Counted receive: run until every planned incoming row of
            # this phase has arrived.  Rows land in disjoint slices, so
            # arrival order cannot change the state.
            remaining = set(self.expected[entity])
            while remaining:
                ids, payload = comm.recv(tag=tag)
                ids = np.asarray(ids)
                id_list = [int(item) for item in ids]
                stray = [item for item in id_list if item not in remaining]
                if stray:
                    raise ValidationError(
                        f"rank {self.rank} received {entity} rows "
                        f"{stray[:5]} it never planned for — the "
                        f"communication plan and the exchange loop are "
                        f"inconsistent")
                remaining.difference_update(id_list)
                target[ids] = np.asarray(payload)

    # -- evaluation gather -------------------------------------------------

    def gather_state(self, user_prior: GaussianPrior,
                     movie_prior: GaussianPrior,
                     iteration: int) -> Optional[BPMFState]:
        """Authoritative rows to rank 0 (mirrors ``_gather_state``)."""
        comm = self.comm
        users = self.partition.users_of(self.rank)
        movies = self.partition.movies_of(self.rank)
        if self.rank != 0:
            comm.isend((users, self.user_factors[users], movies,
                        self.movie_factors[movies]),
                       dest=0, tag=_EVAL_TAG, description="gather-eval")
            return None
        k = self.sampler.config.num_latent
        user_factors = np.zeros((self.partition.n_users, k))
        movie_factors = np.zeros((self.partition.n_movies, k))
        user_factors[users] = self.user_factors[users]
        movie_factors[movies] = self.movie_factors[movies]
        for _ in range(comm.size - 1):
            got = comm.recv(tag=_EVAL_TAG)
            got_users, user_rows, got_movies, movie_rows = got
            user_factors[np.asarray(got_users)] = np.asarray(user_rows)
            movie_factors[np.asarray(got_movies)] = np.asarray(movie_rows)
        return BPMFState(
            user_factors=user_factors,
            movie_factors=movie_factors,
            user_prior=user_prior,
            movie_prior=movie_prior,
            iteration=iteration,
        )


def run_local_socket_world(make_sampler, n_ranks: int, train: RatingMatrix,
                           split: Optional[RatingSplit] = None,
                           seed: SeedLike = 0,
                           partition: Optional[Partition] = None,
                           injectors=None,
                           op_timeout: float = 120.0) -> List[Tuple]:
    """Drive an ``n_ranks`` socket world on threads in this process.

    Real localhost TCP links, real framing, real receiver threads — only
    the process boundary is elided.  ``make_sampler`` is a zero-argument
    factory called once *per rank thread*: every rank needs its own
    sampler because the update engine's cached bucket plans are not
    shared across threads.  Returns the per-rank ``(result, info)``
    pairs (result is ``None`` except on rank 0); the worlds are closed
    before returning, and the first rank failure is re-raised.

    Tests, the quickstart example and the bench ladder use this; real
    deployments use one process per rank via ``python -m repro.mpi.net``.
    """
    import threading

    from repro.mpi.net import start_local_world

    worlds = start_local_world(n_ranks, injectors=injectors,
                               op_timeout=op_timeout)
    results: List[Optional[Tuple]] = [None] * n_ranks
    errors: List[Optional[BaseException]] = [None] * n_ranks

    def drive(rank: int) -> None:
        try:
            sampler = make_sampler()
            results[rank] = sampler.run(train, split, seed=seed,
                                        partition=partition,
                                        comm_world=worlds[rank])
        except BaseException as error:  # re-raised below
            errors[rank] = error
            # A dead process drops its sockets; a dead thread must too,
            # so the peers fail fast instead of waiting out op_timeout.
            worlds[rank].abort(f"rank {rank} failed: {error}")

    threads = [threading.Thread(target=drive, args=(rank,), daemon=True,
                                name=f"repro-spmd-rank-{rank}")
               for rank in range(n_ranks)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        for world in worlds:
            world.close()
    failures = [error for error in errors if error is not None]
    if failures:
        raise failures[0]
    return results  # type: ignore[return-value]


def run_spmd(sampler, world, train: RatingMatrix,
             split: Optional[RatingSplit] = None, seed: SeedLike = 0,
             partition: Optional[Partition] = None
             ) -> Tuple[Optional[BPMFResult], "DistributedRunInfo"]:
    """Run one rank of the distributed sampler over a real comm world.

    Every participating process calls this with the *same* ``train``,
    ``split``, ``seed`` and options (the SPMD contract: partitioning and
    RNG replication both assume identical inputs).  Rank 0 returns the
    full :class:`BPMFResult`; the other ranks return ``None`` for the
    result — they hold only their blocks.  Diagnostics come back on
    every rank, with traffic counted from this rank's transport.

    ``world`` is anything with the socket-world surface (``rank``,
    ``n_ranks``, ``comm()`` — see :class:`repro.mpi.net.SocketCommWorld`).
    The caller owns the world's lifetime; ``run_spmd`` leaves it open.
    """
    from repro.distributed.sampler import DistributedRunInfo

    config, options = sampler.config, sampler.options
    if options.checkpoint is not None:
        raise ValidationError(
            "checkpointing is an orchestrated-run feature; run the "
            "socket world without DistributedOptions.checkpoint")
    comm = world.comm()
    if world.n_ranks != options.n_ranks:
        raise ValidationError(
            f"world has {world.n_ranks} ranks but options.n_ranks is "
            f"{options.n_ranks} — the partition would not match")

    rng = as_generator(seed)
    reference_state = initialize_state(train, config, rng)
    if partition is None:
        partition = partition_ratings(
            train, options.n_ranks, workload=options.workload,
            reorder=options.reorder)
    elif partition.n_ranks != options.n_ranks:
        raise ValidationError("partition rank count does not match options")
    plan = build_comm_plan(train, partition)
    rank_state = _SpmdRank(sampler, comm, train, partition, plan, rng,
                           reference_state)

    if split is not None and split.n_test > 0:
        test_users, test_movies, test_values = split.test_triplets()
    else:
        test_users, test_movies, test_values = train.triplets()
    predictor = PosteriorPredictor(
        test_users, test_movies,
        keep_samples=options.keep_sample_predictions)

    rmse_burn_in: List[float] = []
    rmse_per_sample: List[float] = []
    rmse_running_mean: List[float] = []
    items_updated_total = 0
    user_prior = GaussianPrior.standard(config.num_latent)
    movie_prior = GaussianPrior.standard(config.num_latent)
    gathered: Optional[BPMFState] = None

    try:
        for iteration in range(config.total_iterations):
            with maybe_span("mpi.sweep", iteration=iteration,
                            rank=comm.rank):
                movie_prior = rank_state.sample_prior("movies", iteration)
                movie_noise = rng.standard_normal((train.n_movies,
                                                   config.num_latent))
                rank_state.run_phase("movies", movie_prior, movie_noise)
                user_prior = rank_state.sample_prior("users", iteration)
                user_noise = rng.standard_normal((train.n_users,
                                                  config.num_latent))
                rank_state.run_phase("users", user_prior, user_noise)

                state = rank_state.gather_state(user_prior, movie_prior,
                                                iteration + 1)
                if comm.rank == 0:
                    gathered = state
                    sample_pred = gathered.predict(test_users, test_movies)
                    if iteration >= config.burn_in:
                        predictor.accumulate(gathered)
                        rmse_per_sample.append(
                            rmse(sample_pred, test_values))
                        rmse_running_mean.append(
                            rmse(predictor.mean_prediction(), test_values))
                    else:
                        rmse_burn_in.append(rmse(sample_pred, test_values))
        # Everyone finishes before anyone tears its links down.
        comm.barrier()
    finally:
        sampler._engine.close()

    items_updated_total = rank_state.items_updated
    if world.pending_messages():
        raise ValidationError(
            f"rank {comm.rank} holds {world.pending_messages()} messages "
            f"that were never received — the communication plan and the "
            f"exchange loop are inconsistent")

    result: Optional[BPMFResult] = None
    if comm.rank == 0:
        result = BPMFResult(
            config=config,
            state=gathered,
            rmse_per_sample=rmse_per_sample,
            rmse_running_mean=rmse_running_mean,
            rmse_burn_in=rmse_burn_in,
            predictions=predictor.mean_prediction(),
            sample_predictions=(predictor.sample_matrix()
                                if options.keep_sample_predictions else None),
            items_updated=items_updated_total,
            factor_means=None,
        )
    info = DistributedRunInfo(
        partition=partition,
        plan=plan,
        buffer_stats=rank_state.buffer_stats,
        n_messages=world.total_messages_sent(),
        bytes_sent=float(world.total_bytes_sent()),
        items_exchanged_per_iteration=plan.total_items_exchanged(),
    )
    return result, info
