"""Distributed BPMF (Section IV of the paper).

Built on the simulated MPI substrate (:mod:`repro.mpi`):

* :mod:`repro.distributed.partition` — distributes the rows of ``U`` and
  ``V`` over the ranks using the paper's workload model (fixed cost plus a
  cost per rating) after a locality-improving reordering of ``R``.
* :mod:`repro.distributed.comm_plan` — derives, from the sparsity pattern
  and the partition, exactly which updated items each rank must send to
  which other ranks ("the rating matrix R determines to what nodes this
  item needs to be sent").
* :mod:`repro.distributed.sampler` — the asynchronous distributed Gibbs
  sampler: ranks hold their own copies of the factor matrices, update the
  items they own, stream the updates through send buffers and apply the
  buffers they receive; the result is statistically identical to the
  sequential sampler.
* :mod:`repro.distributed.sync_sampler` — the bulk-synchronous baseline
  that exchanges everything at the end of each phase in single large
  messages (the "more common synchronous approach" the paper outperforms).
* :mod:`repro.distributed.scaling` — the strong-scaling performance model
  (nodes, racks, cache effects, message overheads) that regenerates
  Figures 4 and 5.
"""

from repro.distributed.partition import Partition, partition_ratings
from repro.distributed.comm_plan import CommunicationPlan, build_comm_plan
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.distributed.sync_sampler import BulkSynchronousGibbsSampler
from repro.distributed.scaling import (
    ScalingConfig,
    ScalingPoint,
    StrongScalingResult,
    strong_scaling_study,
)

__all__ = [
    "Partition",
    "partition_ratings",
    "CommunicationPlan",
    "build_comm_plan",
    "DistributedGibbsSampler",
    "DistributedOptions",
    "BulkSynchronousGibbsSampler",
    "ScalingConfig",
    "ScalingPoint",
    "StrongScalingResult",
    "strong_scaling_study",
]
