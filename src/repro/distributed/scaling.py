"""Strong-scaling performance model (Figures 4 and 5).

The functional distributed sampler proves the algorithm; this module
predicts its wall-clock behaviour on a cluster the execution environment
does not have.  For every node count it:

1. partitions the dataset with the workload-aware partitioner and derives
   the communication plan — i.e. the *real* data distribution and traffic
   the functional sampler would produce;
2. computes every node's per-phase compute time by scheduling its items on
   the simulated multicore node (work-stealing over ``cores_per_node``
   cores), scaled by the cache model (smaller partitions run faster per
   item — the paper's super-linear region);
3. computes the message traffic per rank pair from the plan and the send
   buffers (messages, bytes, per-message CPU overhead), link transfer times
   from the rack-aware network model and the shared inter-rack uplink;
4. combines them into per-rank phase times with or without
   communication/computation overlap, yielding the iteration time, the
   throughput in item updates per second and the parallel efficiency
   (Figure 4), plus the compute / both / communicate breakdown (Figure 5).

Nothing in the model is fitted to the paper's curves; the shapes emerge
from the partition, the plan and the documented hardware parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.distributed.comm_plan import CommunicationPlan, build_comm_plan
from repro.distributed.partition import Partition, partition_ratings
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.mpi.trace import PhaseBreakdown, RankTimeline
from repro.parallel.cost_model import DEFAULT_COST_MODEL, UpdateCostModel, WorkloadModel
from repro.parallel.simulator import tasks_from_degrees
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.sparse.csr import RatingMatrix
from repro.utils.tables import Table
from repro.utils.validation import check_positive

__all__ = ["ScalingConfig", "ScalingPoint", "StrongScalingResult", "strong_scaling_study"]


@dataclass(frozen=True)
class ScalingConfig:
    """Parameters of the strong-scaling study."""

    num_latent: int = 32
    buffer_capacity: int = 64
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    network: NetworkModel = field(default_factory=NetworkModel)
    cost_model: UpdateCostModel = field(default_factory=lambda: DEFAULT_COST_MODEL)
    policy: HybridUpdatePolicy = field(default_factory=HybridUpdatePolicy)
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    reorder: bool = True
    overlap_communication: bool = True
    hyper_serial_overhead: float = 2.0e-4
    rating_bytes: int = 12
    value_bytes: int = 8
    #: ``True`` — run the work-stealing scheduler for every node's compute
    #: makespan; ``False`` — use the greedy makespan bound
    #: ``max(total_work / cores, longest_chain)``; ``None`` (default) —
    #: scheduler for small workloads, bound for paper-scale ones.
    schedule_node_compute: Optional[bool] = None
    #: Item-count threshold for the automatic choice above.
    scheduler_item_limit: int = 50_000

    def __post_init__(self):
        check_positive("num_latent", self.num_latent)
        check_positive("buffer_capacity", self.buffer_capacity)
        check_positive("hyper_serial_overhead", self.hyper_serial_overhead)
        check_positive("scheduler_item_limit", self.scheduler_item_limit)


@dataclass
class ScalingPoint:
    """Model output for one node count."""

    n_nodes: int
    n_cores: int
    iteration_time: float
    throughput: float
    parallel_efficiency: float
    breakdown: PhaseBreakdown
    compute_time_max: float
    communication_time_max: float
    messages_per_iteration: int
    bytes_per_iteration: float
    items_exchanged_per_iteration: int
    cache_factor_mean: float
    work_imbalance: float

    def breakdown_fractions(self) -> Dict[str, float]:
        return self.breakdown.fractions()


@dataclass
class StrongScalingResult:
    """All scaling points of one study, plus the Figure 4/5 tabulators."""

    config: ScalingConfig
    n_items: int
    points: List[ScalingPoint]

    def point(self, n_nodes: int) -> ScalingPoint:
        for candidate in self.points:
            if candidate.n_nodes == n_nodes:
                return candidate
        raise KeyError(f"no scaling point for {n_nodes} nodes")

    def throughput_series(self) -> List[float]:
        return [point.throughput for point in self.points]

    def efficiency_series(self) -> List[float]:
        return [point.parallel_efficiency for point in self.points]

    def to_table(self) -> Table:
        """Figure 4: performance (items/s) and parallel efficiency per node count."""
        table = Table(
            ["nodes", "cores", "items/s", "parallel efficiency (%)",
             "messages/iter", "MB/iter"],
            title="Figure 4 — distributed BPMF strong scaling",
        )
        for point in self.points:
            table.add_row(
                point.n_nodes,
                point.n_cores,
                point.throughput,
                100.0 * point.parallel_efficiency,
                point.messages_per_iteration,
                point.bytes_per_iteration / 1e6,
            )
        return table

    def breakdown_table(self) -> Table:
        """Figure 5: compute / both / communicate shares per node count."""
        table = Table(
            ["nodes", "cores", "compute (%)", "both (%)", "communicate (%)"],
            title="Figure 5 — time spent computing, communicating and both",
        )
        for point in self.points:
            shares = point.breakdown_fractions()
            table.add_row(
                point.n_nodes,
                point.n_cores,
                100.0 * shares["compute"],
                100.0 * shares["both"],
                100.0 * shares["communicate"],
            )
        return table


# --------------------------------------------------------------------------- #
# single-point model
# --------------------------------------------------------------------------- #

def _hybrid_item_costs(degrees: np.ndarray, config: ScalingConfig
                       ) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised per-item (serial cost, longest sub-task chain) arrays."""
    model, policy = config.cost_model, config.policy
    k = config.num_latent
    rank_one = np.asarray(model.cost(degrees, UpdateMethod.RANK_ONE, k))
    serial = np.asarray(model.cost(degrees, UpdateMethod.SERIAL_CHOLESKY, k))
    costs = np.where(degrees < policy.rank_one_threshold, rank_one, serial)
    # Heavy items are splittable: their contribution to the critical path is
    # one Gram block plus the factorisation tail, not the whole item.
    heavy = degrees >= policy.parallel_threshold
    chain = costs.copy()
    if heavy.any():
        n_sub = np.maximum(2, np.ceil(degrees[heavy] / policy.block_grain))
        per_block = (model.chol_per_rating * (k / model.k_ref) ** 2
                     * degrees[heavy] / n_sub)
        tail = float(model.cost(0, UpdateMethod.PARALLEL_CHOLESKY, k, workers=1))
        chain[heavy] = per_block + tail
    return costs, chain


def _phase_model(
    phase: str,
    ratings: RatingMatrix,
    partition: Partition,
    plan: CommunicationPlan,
    config: ScalingConfig,
    scheduler: WorkStealingScheduler,
    timelines: List[RankTimeline],
) -> Dict[str, float]:
    """Model one phase (movies or users); returns aggregate phase metrics."""
    cluster, network = config.cluster, config.network
    n_ranks = partition.n_ranks
    degrees = ratings.movie_degrees() if phase == "movies" else ratings.user_degrees()
    owned_of = partition.movies_of if phase == "movies" else partition.users_of
    user_degrees = ratings.user_degrees()
    movie_degrees = ratings.movie_degrees()

    n_items_total = ratings.n_users + ratings.n_movies
    if config.schedule_node_compute is None:
        use_scheduler = n_items_total <= config.scheduler_item_limit
    else:
        use_scheduler = config.schedule_node_compute
    item_costs, item_chains = _hybrid_item_costs(degrees, config)

    # --- per-rank compute time (simulated multicore node + cache model) ----
    compute = np.zeros(n_ranks)
    cache_factors = np.zeros(n_ranks)
    received_items = plan.items_between(phase).sum(axis=0)  # per destination
    for rank in range(n_ranks):
        owned = owned_of(rank)
        if owned.shape[0] == 0:
            makespan = 0.0
        elif use_scheduler:
            tasks = tasks_from_degrees(degrees[owned], config.num_latent,
                                       cost_model=config.cost_model,
                                       policy=config.policy, tag=phase)
            makespan = scheduler.schedule(tasks, cluster.cores_per_node).makespan
        else:
            # Greedy list-scheduling bound: total work spread over the cores,
            # no shorter than the longest unsplittable chain.
            total_work = float(item_costs[owned].sum())
            longest = float(item_chains[owned].max())
            makespan = max(total_work / cluster.cores_per_node, longest)
        # Working set: the rank's slices of U and V, the remote rows it
        # receives this iteration, and its share of the rating structure.
        n_local_users = int((partition.user_owner == rank).sum())
        n_local_movies = int((partition.movie_owner == rank).sum())
        # The node stores the CSR slices of its users and the CSC slices of
        # its movies (both views are needed by the two phases).
        local_nnz = int(user_degrees[partition.users_of(rank)].sum()
                        + movie_degrees[partition.movies_of(rank)].sum())
        working_set = ((n_local_users + n_local_movies + int(received_items[rank]))
                       * config.num_latent * config.value_bytes
                       + local_nnz * config.rating_bytes)
        factor = cluster.cache_factor(working_set)
        cache_factors[rank] = factor
        compute[rank] = makespan / (factor * cluster.node_compute_efficiency)

    # --- message traffic ----------------------------------------------------
    items_matrix = plan.items_between(phase)
    send_cpu = np.zeros(n_ranks)
    recv_cpu = np.zeros(n_ranks)
    transfer_out_total = np.zeros(n_ranks)     # total wire time of a rank's sends
    last_buffer_time = np.zeros((n_ranks, n_ranks))
    bytes_sent = 0.0
    n_messages = 0
    interrack_bytes_from_rack: Dict[int, float] = {}

    for src in range(n_ranks):
        for dst in range(n_ranks):
            items = int(items_matrix[src, dst])
            if items == 0 or src == dst:
                continue
            messages = math.ceil(items / config.buffer_capacity)
            payload = network.message_bytes(items, config.num_latent,
                                            config.value_bytes)
            bytes_sent += payload
            n_messages += messages
            send_cpu[src] += messages * network.per_message_overhead
            recv_cpu[dst] += messages * network.per_message_overhead
            wire = (messages * network.latency(cluster, src, dst)
                    + payload / network.bandwidth(cluster, src, dst))
            transfer_out_total[src] += wire
            # The last buffer to this destination leaves at the end of the
            # source's compute; its own wire time bounds the arrival.
            last_items = items - (messages - 1) * config.buffer_capacity
            last_payload = network.message_bytes(last_items, config.num_latent,
                                                 config.value_bytes)
            last_buffer_time[src, dst] = network.transfer_time(cluster, src, dst,
                                                               last_payload)
            if not cluster.same_rack(src, dst):
                rack = cluster.rack_of(src)
                interrack_bytes_from_rack[rack] = (
                    interrack_bytes_from_rack.get(rack, 0.0) + payload)

    uplink_drain = {rack: network.uplink_serialization(bytes_)
                    for rack, bytes_ in interrack_bytes_from_rack.items()}

    # --- per-rank phase completion ------------------------------------------
    phase_end = np.zeros(n_ranks)
    local_done = compute + send_cpu + recv_cpu
    for dst in range(n_ranks):
        arrival = 0.0
        for src in range(n_ranks):
            if src == dst or items_matrix[src, dst] == 0:
                continue
            if config.overlap_communication:
                # Earlier buffers were streamed during the source's compute;
                # only the excess of total wire time over compute leaks out.
                hidden_excess = max(0.0, transfer_out_total[src] - compute[src])
                candidate = (compute[src] + send_cpu[src]
                             + last_buffer_time[src, dst] + hidden_excess)
            else:
                # Synchronous exchange: every transfer starts after compute
                # and the source's sends serialise.
                candidate = (compute[src] + send_cpu[src] + transfer_out_total[src])
            if not cluster.same_rack(src, dst):
                candidate += uplink_drain.get(cluster.rack_of(src), 0.0)
            arrival = max(arrival, candidate)
        phase_end[dst] = max(local_done[dst], arrival)

    phase_time = float(phase_end.max())

    # --- Figure 5 accounting --------------------------------------------------
    for rank in range(n_ranks):
        comm_busy = transfer_out_total[rank] + float(
            sum(last_buffer_time[src, rank] for src in range(n_ranks)))
        overlap = min(compute[rank], comm_busy) if config.overlap_communication else 0.0
        compute_only = compute[rank] - overlap
        communicate_only = max(phase_time - compute[rank], 0.0)
        timelines[rank].add_compute(compute_only)
        timelines[rank].add_both(overlap)
        timelines[rank].add_communicate(communicate_only)

    return {
        "phase_time": phase_time,
        "compute_max": float(compute.max()) if n_ranks else 0.0,
        "comm_max": float((phase_end - compute).max()) if n_ranks else 0.0,
        "messages": float(n_messages),
        "bytes": bytes_sent,
        "cache_factor_mean": float(cache_factors.mean()) if n_ranks else 1.0,
    }


def _model_point(ratings: RatingMatrix, n_nodes: int,
                 config: ScalingConfig,
                 scheduler: WorkStealingScheduler) -> ScalingPoint:
    # Balance the partition in the same cost units the compute model uses.
    user_costs, _ = _hybrid_item_costs(ratings.user_degrees(), config)
    movie_costs, _ = _hybrid_item_costs(ratings.movie_degrees(), config)
    partition = partition_ratings(ratings, n_nodes, workload=config.workload,
                                  reorder=config.reorder,
                                  user_costs=user_costs, movie_costs=movie_costs)
    plan = build_comm_plan(ratings, partition)
    timelines = [RankTimeline(rank) for rank in range(n_nodes)]

    movie_metrics = _phase_model("movies", ratings, partition, plan, config,
                                 scheduler, timelines)
    user_metrics = _phase_model("users", ratings, partition, plan, config,
                                scheduler, timelines)

    k = config.num_latent
    hyper_bytes = (1 + k + k * k) * 8
    hyper_time = (config.hyper_serial_overhead
                  + 2 * config.network.allreduce_time(config.cluster, n_nodes,
                                                      hyper_bytes))
    iteration_time = (movie_metrics["phase_time"] + user_metrics["phase_time"]
                      + hyper_time)
    n_items = ratings.n_users + ratings.n_movies
    throughput = n_items / iteration_time

    return ScalingPoint(
        n_nodes=n_nodes,
        n_cores=n_nodes * config.cluster.cores_per_node,
        iteration_time=iteration_time,
        throughput=throughput,
        parallel_efficiency=float("nan"),  # filled relative to the first point
        breakdown=PhaseBreakdown.from_timelines(timelines),
        compute_time_max=movie_metrics["compute_max"] + user_metrics["compute_max"],
        communication_time_max=movie_metrics["comm_max"] + user_metrics["comm_max"],
        messages_per_iteration=int(movie_metrics["messages"] + user_metrics["messages"]),
        bytes_per_iteration=movie_metrics["bytes"] + user_metrics["bytes"],
        items_exchanged_per_iteration=plan.total_items_exchanged(),
        cache_factor_mean=0.5 * (movie_metrics["cache_factor_mean"]
                                 + user_metrics["cache_factor_mean"]),
        work_imbalance=partition.imbalance(ratings, config.workload),
    )


def strong_scaling_study(
    ratings: RatingMatrix,
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    config: Optional[ScalingConfig] = None,
    baseline_nodes: Optional[int] = None,
) -> StrongScalingResult:
    """Run the Figure 4/5 model over a range of node counts.

    ``parallel_efficiency`` is computed relative to ``baseline_nodes``
    (default: the smallest node count in the sweep), matching the paper's
    definition of strong-scaling efficiency.
    """
    config = config or ScalingConfig()
    for count in node_counts:
        check_positive("node_counts entry", count)
    scheduler = WorkStealingScheduler()
    points = [_model_point(ratings, n, config, scheduler) for n in node_counts]

    reference_nodes = baseline_nodes or min(node_counts)
    reference = next(p for p in points if p.n_nodes == reference_nodes)
    for point in points:
        ideal = reference.throughput * (point.n_nodes / reference.n_nodes)
        point.parallel_efficiency = point.throughput / ideal

    return StrongScalingResult(
        config=config,
        n_items=ratings.n_users + ratings.n_movies,
        points=points,
    )
