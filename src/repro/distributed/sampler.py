"""Asynchronous distributed BPMF Gibbs sampler on the simulated MPI world.

Every simulated rank owns a block of users and a block of movies (from the
workload-aware partition) and keeps its *own copies* of ``U`` and ``V``.
Within one iteration:

1. movie hyperparameters are obtained from an allreduce of per-rank
   sufficient statistics (or a gather of the factor matrix when exact
   reproducibility against the sequential sampler is wanted);
2. every rank updates the movies it owns, using the user factors it holds
   locally (authoritative for its own users, last-received copies for
   remote users — which are up to date because they were exchanged at the
   end of the previous user phase);
3. as items are updated they are appended to per-destination send buffers
   which are shipped with non-blocking sends when full ("communication
   overlapping computation"); leftover buffers are flushed at the end of
   the phase and every rank applies the factor rows it received;
4. the user phase repeats steps 1–3 with the roles swapped;
5. the test points are predicted from the authoritative rows gathered at
   rank 0 and the RMSE traces are recorded.

Because ranks only ever see remote data that arrived in messages, a wrong
or incomplete communication plan makes the result diverge from the
sequential reference — the accuracy-parity tests exploit exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.core.batch_engine import make_update_engine
from repro.core.gibbs import BPMFResult, ResumeLike
from repro.core.metrics import rmse
from repro.core.predict import PosteriorPredictor
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.state import BPMFState, initialize_state
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.core.wishart import (
    normal_wishart_posterior,
    normal_wishart_posterior_from_stats,
    sample_normal_wishart,
)
from repro.distributed.comm_plan import CommunicationPlan, build_comm_plan
from repro.distributed.partition import Partition, partition_ratings
from repro.mpi.buffers import BufferStats, SendBuffer
from repro.mpi.simmpi import SimComm, SimCommWorld
from repro.parallel.cost_model import WorkloadModel
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_in, check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (serving -> core)
    from repro.serving.checkpoint import CheckpointConfig

__all__ = ["DistributedOptions", "DistributedGibbsSampler", "DistributedRunInfo"]

_PHASE_TAGS = {"movies": 1, "users": 2}


@dataclass
class DistributedOptions:
    """Execution options of the distributed sampler.

    ``checkpoint`` enables save-every-k-sweeps posterior snapshots of the
    authoritative gathered state.  At a sweep boundary every rank's copy of
    each factor row it will read next sweep equals the authoritative row
    (they were exchanged at the end of the phase that last wrote them), so
    resuming by handing all ranks the gathered state reproduces the
    uninterrupted chain exactly.
    """

    n_ranks: int = 4
    buffer_capacity: int = 64
    reorder: bool = True
    hyper_mode: str = "stats"  # "stats" (allreduce) or "gather" (exact parity)
    update_method: Optional[UpdateMethod] = None
    policy: HybridUpdatePolicy = field(default_factory=HybridUpdatePolicy)
    engine: str = "batched"  # update execution strategy (see core.batch_engine)
    compute_dtype: str = "float64"  # kernel precision of the batched/shared engines
    #: Process-pool size per node for ``engine="shared"`` — the simulated
    #: ranks share one pool, which mirrors a real deployment where every
    #: node runs its phase across its local cores.
    n_workers: Optional[int] = None
    workload: WorkloadModel = field(default_factory=WorkloadModel)
    keep_sample_predictions: bool = False
    checkpoint: Optional["CheckpointConfig"] = None

    def __post_init__(self):
        check_positive("n_ranks", self.n_ranks)
        check_positive("buffer_capacity", self.buffer_capacity)
        check_in("hyper_mode", self.hyper_mode, ("stats", "gather"))


@dataclass
class DistributedRunInfo:
    """Diagnostics of one distributed run (traffic, partition quality)."""

    partition: Partition
    plan: CommunicationPlan
    buffer_stats: BufferStats
    n_messages: int
    bytes_sent: float
    items_exchanged_per_iteration: int


class _RankState:
    """One rank's private copies of the factor matrices."""

    def __init__(self, rank: int, user_factors: np.ndarray, movie_factors: np.ndarray):
        self.rank = rank
        self.user_factors = user_factors.copy()
        self.movie_factors = movie_factors.copy()


class DistributedGibbsSampler:
    """Distributed BPMF over a :class:`repro.mpi.simmpi.SimCommWorld`."""

    def __init__(self, config: BPMFConfig | None = None,
                 options: DistributedOptions | None = None):
        self.config = config or BPMFConfig()
        self.options = options or DistributedOptions()
        # One engine shared by all simulated ranks: the bucket plans it
        # caches are keyed per (axis, owned-items) pair, so each rank's
        # subset gets its own plan while the arithmetic stays per-item
        # deterministic (identical rows to a full-matrix plan).  With
        # engine="shared" each rank's per-node phase runs across the
        # engine's process pool, so node- and core-level parallelism
        # compose as in the paper's cluster runs.
        self._engine = make_update_engine(self.options.engine,
                                          update_method=self.options.update_method,
                                          policy=self.options.policy,
                                          compute_dtype=self.options.compute_dtype,
                                          n_workers=self.options.n_workers)

    # ------------------------------------------------------------------ #
    # hyperparameter step
    # ------------------------------------------------------------------ #

    def _sample_prior(self, entity: str, rank_states: List[_RankState],
                      partition: Partition, comms: List[SimComm],
                      rng: np.random.Generator, iteration: int) -> GaussianPrior:
        """Resample one entity class's Gaussian prior across all ranks."""
        hyperprior = (self.config.movie_hyperprior if entity == "movies"
                      else self.config.user_hyperprior)
        owned_of = partition.movies_of if entity == "movies" else partition.users_of

        def local_rows(state: _RankState, owned: np.ndarray) -> np.ndarray:
            matrix = state.movie_factors if entity == "movies" else state.user_factors
            return matrix[owned]

        if self.options.hyper_mode == "gather":
            # Every rank sends its authoritative rows to rank 0, which
            # rebuilds the full matrix in canonical order (bitwise identical
            # to what the sequential sampler sees).
            tag = 100 + _PHASE_TAGS[entity]
            n_items = partition.n_movies if entity == "movies" else partition.n_users
            full = np.zeros((n_items, self.config.num_latent))
            for rank, state in enumerate(rank_states):
                owned = owned_of(rank)
                if rank == 0:
                    full[owned] = local_rows(state, owned)
                else:
                    comms[rank].isend((owned, local_rows(state, owned)), dest=0,
                                      tag=tag, description=f"gather-{entity}")
            for _ in range(len(rank_states) - 1):
                owned, rows = comms[0].recv(tag=tag)
                full[owned] = rows
            posterior = normal_wishart_posterior(full, hyperprior)
        else:
            # Sufficient-statistics allreduce: (count, sum, sum of outer
            # products) flattened into one vector per rank.
            k = self.config.num_latent
            key = f"hyper-{entity}-{iteration}"
            result = None
            for rank, state in enumerate(rank_states):
                owned = owned_of(rank)
                rows = local_rows(state, owned)
                stats = np.concatenate([
                    [float(rows.shape[0])],
                    rows.sum(axis=0) if rows.size else np.zeros(k),
                    (rows.T @ rows).ravel() if rows.size else np.zeros(k * k),
                ])
                contribution = comms[rank].allreduce(stats, key=key)
                if contribution is not None:
                    result = contribution
            if result is None:  # pragma: no cover - defensive
                raise ValidationError("allreduce did not complete")
            for rank in range(len(rank_states) - 1):
                comms[rank].fetch_allreduce(key=key)
            n = int(round(result[0]))
            factor_sum = result[1:1 + k]
            factor_outer = result[1 + k:].reshape(k, k)
            posterior = normal_wishart_posterior_from_stats(
                n, factor_sum, factor_outer, hyperprior)

        # Rank 0 draws; the value is broadcast (functionally shared here,
        # with the messages posted so the traffic is still auditable).
        prior = sample_normal_wishart(posterior, rng)
        for rank in range(1, len(rank_states)):
            comms[0].isend((prior.mean, prior.precision), dest=rank,
                           tag=90 + _PHASE_TAGS[entity], description="bcast-prior")
        for rank in range(1, len(rank_states)):
            comms[rank].recv(source=0, tag=90 + _PHASE_TAGS[entity])
        return prior

    # ------------------------------------------------------------------ #
    # one phase
    # ------------------------------------------------------------------ #

    def _run_phase(self, entity: str, ratings: RatingMatrix,
                   rank_states: List[_RankState], partition: Partition,
                   plan: CommunicationPlan, comms: List[SimComm],
                   prior: GaussianPrior, noise: np.ndarray,
                   buffer_stats: BufferStats) -> int:
        """Update all items of one entity class and exchange the results."""
        tag = _PHASE_TAGS[entity]
        if entity == "movies":
            owned_of = partition.movies_of
            destinations = plan.movie_destinations
            axis = ratings.by_movie
        else:
            owned_of = partition.users_of
            destinations = plan.user_destinations
            axis = ratings.by_user

        updated = 0
        for rank, state in enumerate(rank_states):
            comm = comms[rank]
            target = state.movie_factors if entity == "movies" else state.user_factors
            source = state.user_factors if entity == "movies" else state.movie_factors
            buffers: Dict[int, SendBuffer] = {}

            def flush(dest: int, ids: np.ndarray, payload: np.ndarray,
                      _comm=comm, _tag=tag) -> None:
                _comm.isend((ids, payload), dest=dest, tag=_tag,
                            description=f"{entity}-update")

            # Update all of this rank's items through the engine, then
            # stream the refreshed rows into the per-destination buffers.
            # Within a phase an item's conditional never reads same-class
            # factors, so updating before enqueueing sends the same values
            # (and the same message pattern) as the old interleaved loop.
            owned = np.asarray(owned_of(rank), dtype=np.int64)
            updated += self._engine.update_items(
                target, source, axis, prior, self.config.alpha, noise,
                items=owned)
            for item in owned:
                item = int(item)
                for dest in destinations[item]:
                    dest = int(dest)
                    if dest not in buffers:
                        buffers[dest] = SendBuffer(
                            dest, self.options.buffer_capacity,
                            self.config.num_latent, on_flush=flush)
                    buffers[dest].add(int(item), target[item])
            for buffer in buffers.values():
                buffer.flush(partial=True)
                buffer_stats_local = buffer.stats
                buffer_stats.n_items += buffer_stats_local.n_items
                buffer_stats.n_messages += buffer_stats_local.n_messages
                buffer_stats.n_flushes_full += buffer_stats_local.n_flushes_full
                buffer_stats.n_flushes_partial += buffer_stats_local.n_flushes_partial

        # Apply received updates: every rank drains its mailbox for this tag.
        for rank, state in enumerate(rank_states):
            target = state.movie_factors if entity == "movies" else state.user_factors
            for ids, payload in comms[rank].drain(tag=tag):
                target[ids] = payload
        return updated

    # ------------------------------------------------------------------ #
    # gather for evaluation
    # ------------------------------------------------------------------ #

    def _gather_state(self, rank_states: List[_RankState], partition: Partition,
                      comms: List[SimComm], user_prior: GaussianPrior,
                      movie_prior: GaussianPrior, iteration: int) -> BPMFState:
        """Assemble the authoritative factor rows at rank 0 for evaluation."""
        n_users, n_movies = partition.n_users, partition.n_movies
        k = self.config.num_latent
        user_factors = np.zeros((n_users, k))
        movie_factors = np.zeros((n_movies, k))
        tag = 50
        for rank, state in enumerate(rank_states):
            users = partition.users_of(rank)
            movies = partition.movies_of(rank)
            if rank == 0:
                user_factors[users] = state.user_factors[users]
                movie_factors[movies] = state.movie_factors[movies]
            else:
                comms[rank].isend(
                    (users, state.user_factors[users], movies,
                     state.movie_factors[movies]),
                    dest=0, tag=tag, description="gather-eval")
        for _ in range(len(rank_states) - 1):
            users, user_rows, movies, movie_rows = comms[0].recv(tag=tag)
            user_factors[users] = user_rows
            movie_factors[movies] = movie_rows
        return BPMFState(
            user_factors=user_factors,
            movie_factors=movie_factors,
            user_prior=user_prior,
            movie_prior=movie_prior,
            iteration=iteration,
        )

    # ------------------------------------------------------------------ #
    # full run
    # ------------------------------------------------------------------ #

    def run(self, train: RatingMatrix, split: RatingSplit | None = None,
            seed: SeedLike = 0, partition: Partition | None = None,
            resume: Optional[ResumeLike] = None,
            comm_world=None) -> Tuple[Optional[BPMFResult], DistributedRunInfo]:
        """Run the distributed sampler; returns ``(result, diagnostics)``.

        ``resume`` continues a checkpointed chain: every rank is seeded with
        the snapshot's authoritative factor matrices (exactly what its own
        copies held at that sweep boundary — see :class:`DistributedOptions`)
        and the generator state is restored, so the completed run matches an
        uninterrupted one bit for bit.  Traffic diagnostics
        (:class:`DistributedRunInfo`) restart from zero at the resume point.

        ``comm_world`` selects the transport.  ``None`` (the default)
        orchestrates all ranks in-process over a fresh
        :class:`~repro.mpi.simmpi.SimCommWorld`; passing a ``SimCommWorld``
        orchestrates over that world instead (its message log then holds
        the run's traffic).  Passing a *real* per-process world — anything
        with a ``rank`` attribute, e.g.
        :class:`repro.mpi.net.SocketCommWorld` — switches to the SPMD
        path (:func:`repro.distributed.spmd.run_spmd`): this process runs
        only its own rank and exchanges factors over the wire.  The same
        partition and communication plan drive every transport, and the
        socket chain is bit-identical to the simulated one.  In SPMD mode
        the result comes back on rank 0 only (``None`` elsewhere) and
        checkpoint/resume are rejected.
        """
        from repro.serving.checkpoint import TrainingCheckpointer

        if comm_world is not None and not isinstance(comm_world, SimCommWorld):
            if not hasattr(comm_world, "rank"):
                raise ValidationError(
                    "comm_world must be None, a SimCommWorld, or a "
                    "per-process world with a .rank (e.g. SocketCommWorld)")
            if resume is not None:
                raise ValidationError(
                    "resume is an orchestrated-run feature; SPMD worlds "
                    "cannot restore a gathered snapshot")
            from repro.distributed.spmd import run_spmd
            return run_spmd(self, comm_world, train, split=split, seed=seed,
                            partition=partition)

        rng = as_generator(seed)
        snapshot, resumed_state, rng = TrainingCheckpointer.open_resume(
            resume, None, rng)
        if resumed_state is not None:
            if resumed_state.n_users != train.n_users \
                    or resumed_state.n_movies != train.n_movies:
                raise ValidationError(
                    "snapshot shape does not match the rating matrix")
            reference_state = resumed_state
        else:
            reference_state = initialize_state(train, self.config, rng)

        if partition is None:
            partition = partition_ratings(
                train, self.options.n_ranks, workload=self.options.workload,
                reorder=self.options.reorder)
        elif partition.n_ranks != self.options.n_ranks:
            raise ValidationError("partition rank count does not match options")
        plan = build_comm_plan(train, partition)

        if comm_world is None:
            world = SimCommWorld(self.options.n_ranks)
        else:
            world = comm_world
            if world.n_ranks != self.options.n_ranks:
                raise ValidationError(
                    f"comm_world has {world.n_ranks} ranks but "
                    f"options.n_ranks is {self.options.n_ranks}")
        comms = world.comms()
        rank_states = [
            _RankState(rank, reference_state.user_factors,
                       reference_state.movie_factors)
            for rank in range(self.options.n_ranks)
        ]

        if split is not None and split.n_test > 0:
            test_users, test_movies, test_values = split.test_triplets()
        else:
            test_users, test_movies, test_values = train.triplets()
        predictor = PosteriorPredictor(
            test_users, test_movies,
            keep_samples=self.options.keep_sample_predictions)
        checkpointer = TrainingCheckpointer(self.config, self.options.checkpoint,
                                            snapshot, reference_state, predictor)

        buffer_stats = BufferStats()
        user_prior = GaussianPrior.standard(self.config.num_latent)
        movie_prior = GaussianPrior.standard(self.config.num_latent)
        gathered = reference_state if snapshot is not None else None

        # engine="shared" owns worker processes and shared-memory segments;
        # the finally releases them even when a phase raises mid-run.
        try:
            for iteration in range(checkpointer.start_iteration,
                                   self.config.total_iterations):
                movie_prior = self._sample_prior("movies", rank_states,
                                                 partition, comms, rng,
                                                 iteration)
                movie_noise = rng.standard_normal((train.n_movies,
                                                   self.config.num_latent))
                checkpointer.items_updated += self._run_phase(
                    "movies", train, rank_states, partition, plan, comms,
                    movie_prior, movie_noise, buffer_stats)
                user_prior = self._sample_prior("users", rank_states,
                                                partition, comms, rng,
                                                iteration)
                user_noise = rng.standard_normal((train.n_users,
                                                  self.config.num_latent))
                checkpointer.items_updated += self._run_phase(
                    "users", train, rank_states, partition, plan, comms,
                    user_prior, user_noise, buffer_stats)

                gathered = self._gather_state(rank_states, partition, comms,
                                              user_prior, movie_prior,
                                              iteration + 1)
                sample_pred = gathered.predict(test_users, test_movies)
                if iteration >= self.config.burn_in:
                    predictor.accumulate(gathered)
                    mean_rmse = rmse(predictor.mean_prediction(), test_values)
                else:
                    mean_rmse = None
                checkpointer.record(iteration, gathered,
                                    rmse(sample_pred, test_values), mean_rmse)
                checkpointer.maybe_save(iteration, gathered, rng, predictor)
        finally:
            self._engine.close()

        if world.pending_messages():
            raise ValidationError(
                f"{world.pending_messages()} messages were never received — "
                "the communication plan and the exchange loop are inconsistent")

        log = world.message_log
        result = BPMFResult(
            config=self.config,
            state=gathered,
            rmse_per_sample=checkpointer.rmse_per_sample,
            rmse_running_mean=checkpointer.rmse_running_mean,
            rmse_burn_in=checkpointer.rmse_burn_in,
            predictions=predictor.mean_prediction(),
            sample_predictions=(predictor.sample_matrix()
                                if self.options.keep_sample_predictions else None),
            items_updated=checkpointer.items_updated,
            factor_means=(checkpointer.factor_means
                          if checkpointer.factor_means.n_samples else None),
        )
        info = DistributedRunInfo(
            partition=partition,
            plan=plan,
            buffer_stats=buffer_stats,
            n_messages=len(log),
            bytes_sent=float(sum(record.n_bytes for record in log)),
            items_exchanged_per_iteration=plan.total_items_exchanged(),
        )
        return result, info
