"""Workload-aware distribution of ``U`` and ``V`` across ranks.

Section IV-B of the paper: the matrices ``U`` and ``V`` are distributed
over the nodes; to minimise the items that must be exchanged the rows and
columns of ``R`` are reordered so each node owns a *contiguous region*, and
the split takes a workload model (fixed cost + cost per rating) into
account so every node receives a comparable amount of work rather than a
comparable number of items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.parallel.cost_model import WorkloadModel
from repro.sparse.csr import RatingMatrix
from repro.sparse.reorder import balanced_block_order, bipartite_rcm
from repro.utils.validation import ValidationError, check_positive

__all__ = ["Partition", "partition_ratings"]


@dataclass(frozen=True)
class Partition:
    """Ownership of users and movies by rank.

    ``user_owner[u]`` / ``movie_owner[m]`` give the rank that updates (and
    is authoritative for) user ``u`` / movie ``m``.  The permutations used
    to make ownership contiguous are kept for diagnostics; item indices in
    the partition always refer to the *original* (un-permuted) ids so the
    rest of the pipeline needs no translation.
    """

    n_ranks: int
    user_owner: np.ndarray
    movie_owner: np.ndarray
    user_permutation: Optional[np.ndarray] = None
    movie_permutation: Optional[np.ndarray] = None

    def __post_init__(self):
        check_positive("n_ranks", self.n_ranks)
        for name, owner in (("user_owner", self.user_owner),
                            ("movie_owner", self.movie_owner)):
            owner = np.asarray(owner)
            if owner.size and (owner.min() < 0 or owner.max() >= self.n_ranks):
                raise ValidationError(f"{name} contains ranks outside [0, {self.n_ranks})")

    @property
    def n_users(self) -> int:
        return int(self.user_owner.shape[0])

    @property
    def n_movies(self) -> int:
        return int(self.movie_owner.shape[0])

    def users_of(self, rank: int) -> np.ndarray:
        """User ids owned by ``rank``."""
        return np.nonzero(self.user_owner == rank)[0]

    def movies_of(self, rank: int) -> np.ndarray:
        """Movie ids owned by ``rank``."""
        return np.nonzero(self.movie_owner == rank)[0]

    def rank_sizes(self) -> List[Tuple[int, int]]:
        """``(n_users, n_movies)`` owned by each rank."""
        return [(int((self.user_owner == r).sum()), int((self.movie_owner == r).sum()))
                for r in range(self.n_ranks)]

    def work_per_rank(self, ratings: RatingMatrix,
                      workload: WorkloadModel) -> np.ndarray:
        """Modelled work per rank (users + movies it owns)."""
        user_cost = workload.cost(ratings.user_degrees())
        movie_cost = workload.cost(ratings.movie_degrees())
        work = np.zeros(self.n_ranks)
        np.add.at(work, self.user_owner, user_cost)
        np.add.at(work, self.movie_owner, movie_cost)
        return work

    def imbalance(self, ratings: RatingMatrix, workload: WorkloadModel) -> float:
        """Max-over-mean modelled work across ranks (1.0 = perfect balance)."""
        work = self.work_per_rank(ratings, workload)
        mean = work.mean()
        return float(work.max() / mean) if mean > 0 else 1.0


def _owners_from_blocks(order_positions: np.ndarray, costs: np.ndarray,
                        n_ranks: int) -> np.ndarray:
    """Assign contiguous (in the given ordering) cost-balanced blocks to ranks."""
    order = np.argsort(order_positions, kind="stable")
    blocks_in_order = balanced_block_order(costs[order], n_ranks)
    owners = np.empty(order.shape[0], dtype=np.int64)
    owners[order] = blocks_in_order
    return owners


def partition_ratings(
    ratings: RatingMatrix,
    n_ranks: int,
    workload: WorkloadModel | None = None,
    reorder: bool = True,
    user_costs: Optional[np.ndarray] = None,
    movie_costs: Optional[np.ndarray] = None,
) -> Partition:
    """Partition users and movies over ``n_ranks`` ranks.

    Parameters
    ----------
    ratings:
        The training rating matrix.
    n_ranks:
        Number of ranks (nodes).
    workload:
        Per-item work model; defaults to the paper's fixed+per-rating model.
    reorder:
        When true (default) a reverse Cuthill–McKee ordering of the
        bipartite rating graph is computed first so that contiguous blocks
        cut few ratings; when false items are split in their natural order
        (the ablation baseline).
    user_costs, movie_costs:
        Optional explicit per-item cost vectors; when given they override
        the workload model (the strong-scaling study passes the calibrated
        hybrid-kernel costs here so balance is measured in the same units
        the compute model uses).
    """
    check_positive("n_ranks", n_ranks)
    workload = workload or WorkloadModel()

    user_cost = (np.asarray(user_costs, dtype=float) if user_costs is not None
                 else np.asarray(workload.cost(ratings.user_degrees()), dtype=float))
    movie_cost = (np.asarray(movie_costs, dtype=float) if movie_costs is not None
                  else np.asarray(workload.cost(ratings.movie_degrees()), dtype=float))
    if user_cost.shape[0] != ratings.n_users or movie_cost.shape[0] != ratings.n_movies:
        raise ValidationError("per-item cost vectors do not match the matrix shape")

    if reorder and ratings.nnz > 0 and n_ranks > 1:
        user_perm, movie_perm = bipartite_rcm(ratings)
    else:
        user_perm = np.arange(ratings.n_users, dtype=np.int64)
        movie_perm = np.arange(ratings.n_movies, dtype=np.int64)

    user_owner = _owners_from_blocks(user_perm, user_cost, n_ranks)
    movie_owner = _owners_from_blocks(movie_perm, movie_cost, n_ranks)
    return Partition(
        n_ranks=n_ranks,
        user_owner=user_owner,
        movie_owner=movie_owner,
        user_permutation=user_perm,
        movie_permutation=movie_perm,
    )
