"""Bulk-synchronous (BSP) distributed BPMF baseline.

The paper contrasts its asynchronous, buffered exchange against "more
common synchronous approaches like GraphLab": update everything you own,
then exchange everything in one synchronous step, then proceed.  This
sampler produces exactly the same samples as
:class:`repro.distributed.sampler.DistributedGibbsSampler` (the maths does
not change) but its message pattern is one large message per communicating
rank pair and phase, with no opportunity to overlap transfers with the
item updates that produced them.

The strong-scaling model (:mod:`repro.distributed.scaling`) treats runs
configured this way with overlap disabled, which is how the async-vs-sync
ablation benchmark quantifies the benefit the paper claims.
"""

from __future__ import annotations

from repro.core.priors import BPMFConfig
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions

__all__ = ["BulkSynchronousGibbsSampler"]


class BulkSynchronousGibbsSampler(DistributedGibbsSampler):
    """Distributed BPMF with one bulk exchange per phase (no streaming buffers).

    Implemented by forcing the per-destination send buffer to be large
    enough to hold every item a rank could possibly send, so each
    communicating pair exchanges exactly one message per phase.
    """

    def __init__(self, config: BPMFConfig | None = None,
                 options: DistributedOptions | None = None):
        options = options or DistributedOptions()
        # Work on a copy so the caller's options object is not mutated, and
        # give the buffer a capacity no phase can ever fill, which collapses
        # the streaming exchange into one message per communicating pair.
        bulk_options = DistributedOptions(
            n_ranks=options.n_ranks,
            buffer_capacity=2**31 - 1,
            reorder=options.reorder,
            hyper_mode=options.hyper_mode,
            update_method=options.update_method,
            policy=options.policy,
            engine=options.engine,
            workload=options.workload,
            keep_sample_predictions=options.keep_sample_predictions,
        )
        super().__init__(config, bulk_options)

    @property
    def is_bulk_synchronous(self) -> bool:
        return True
