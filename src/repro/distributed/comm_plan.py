"""Communication plan derivation.

Section IV-B: *"When an item is computed, the rating matrix R determines to
what nodes this item needs to be sent."*  Concretely, after rank ``p``
updates movie ``m`` it must ship the new factor row to every rank that owns
at least one user who rated ``m`` (those ranks will read ``V_m`` during the
next user phase), and symmetrically for users.

:class:`CommunicationPlan` stores, for every item, the set of destination
ranks, plus aggregate per-rank-pair item counts which feed both the
performance model (Figures 4–5) and the partitioning-quality ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.distributed.partition import Partition
from repro.sparse.csr import RatingMatrix
from repro.utils.validation import ValidationError

__all__ = ["CommunicationPlan", "build_comm_plan"]


@dataclass(frozen=True)
class CommunicationPlan:
    """Destinations of every item's update, plus traffic summaries.

    ``movie_destinations[m]`` (resp. ``user_destinations[u]``) is a sorted
    integer array of ranks that must receive movie ``m`` (user ``u``) after
    its owner updates it.  The owner itself never appears.
    """

    partition: Partition
    movie_destinations: Tuple[np.ndarray, ...]
    user_destinations: Tuple[np.ndarray, ...]

    @property
    def n_ranks(self) -> int:
        return self.partition.n_ranks

    # -- aggregate traffic -------------------------------------------------

    def items_between(self, phase: str) -> np.ndarray:
        """``(n_ranks, n_ranks)`` matrix of item transfers for one phase.

        Entry ``[src, dst]`` counts items owned by ``src`` that must reach
        ``dst`` after the given phase (``"movies"`` or ``"users"``).
        """
        if phase == "movies":
            owners = self.partition.movie_owner
            destinations = self.movie_destinations
        elif phase == "users":
            owners = self.partition.user_owner
            destinations = self.user_destinations
        else:
            raise ValidationError(f"phase must be 'movies' or 'users', got {phase!r}")
        matrix = np.zeros((self.n_ranks, self.n_ranks), dtype=np.int64)
        lengths = np.array([dests.shape[0] for dests in destinations], dtype=np.int64)
        if lengths.sum() == 0:
            return matrix
        src = np.repeat(np.asarray(owners, dtype=np.int64), lengths)
        dst = np.concatenate([d for d in destinations if d.shape[0]])
        np.add.at(matrix, (src, dst), 1)
        return matrix

    def total_items_exchanged(self) -> int:
        """Total item transfers per iteration (both phases)."""
        return int(self.items_between("movies").sum()
                   + self.items_between("users").sum())

    def replication_factor(self, phase: str) -> float:
        """Average number of extra ranks each item must be copied to."""
        destinations = (self.movie_destinations if phase == "movies"
                        else self.user_destinations)
        if not destinations:
            return 0.0
        return float(np.mean([len(d) for d in destinations]))


def _destinations_for_axis(owners_of_items: np.ndarray,
                           owners_of_partners: np.ndarray,
                           axis) -> Tuple[np.ndarray, ...]:
    """For each item, ranks (other than its owner) owning a rating partner.

    Vectorised so the plan can be derived for paper-scale workloads: every
    stored rating contributes an ``(item, partner_owner)`` key; the unique
    keys, minus the item's own owner, are exactly the destination sets.
    """
    n_items = int(owners_of_items.shape[0])
    n_ranks = int(owners_of_items.max(initial=0)) + 1 if n_items else 1
    n_ranks = max(n_ranks, int(owners_of_partners.max(initial=0)) + 1)
    degrees = np.diff(axis.indptr)
    if axis.nnz == 0:
        return tuple(np.empty(0, dtype=np.int64) for _ in range(n_items))

    item_of_entry = np.repeat(np.arange(n_items, dtype=np.int64), degrees)
    partner_owner = owners_of_partners[axis.indices]
    keys = np.unique(item_of_entry * np.int64(n_ranks) + partner_owner)
    key_items = keys // n_ranks
    key_ranks = keys % n_ranks
    keep = key_ranks != owners_of_items[key_items]
    key_items = key_items[keep]
    key_ranks = key_ranks[keep]

    boundaries = np.searchsorted(key_items, np.arange(n_items + 1))
    return tuple(key_ranks[boundaries[i]:boundaries[i + 1]].copy()
                 for i in range(n_items))


def build_comm_plan(ratings: RatingMatrix, partition: Partition) -> CommunicationPlan:
    """Derive the communication plan from the sparsity pattern and partition."""
    if partition.n_users != ratings.n_users or partition.n_movies != ratings.n_movies:
        raise ValidationError("partition shape does not match the rating matrix")
    movie_destinations = _destinations_for_axis(
        partition.movie_owner, partition.user_owner, ratings.by_movie)
    user_destinations = _destinations_for_axis(
        partition.user_owner, partition.movie_owner, ratings.by_user)
    return CommunicationPlan(
        partition=partition,
        movie_destinations=movie_destinations,
        user_destinations=user_destinations,
    )
