#!/usr/bin/env python3
"""Network serving quickstart: replicas -> fused queries -> failover.

Walks the network frontend (`repro.serving.net`):

1. train BPMF and snapshot the posterior;
2. start a 2-replica TCP server (:class:`ReplicaSet`) — each replica an
   independent gateway behind the framed RPC protocol, with fused
   batched dispatch on by default (pass ``fuse_window_ms=None`` — or
   ``--fuse-window 0`` on the CLI — to disable it);
3. query it from the sync client (:class:`ServingClient`, which
   negotiates the binary array encoding in the handshake; pass
   ``binary=False`` to force JSON) with a burst of concurrent requests,
   and verify every fused response is bit-identical to the
   single-process :class:`PredictionService`;
4. pump the same queries through one pipelined connection
   (``top_n_pipelined`` keeps up to 32 id-tagged frames in flight
   instead of one blocking round-trip per query) — same bits again;
5. fold a cold-start user in over the wire and rate more items
   (mutations replicate through the write leader — see
   ``examples/wal_quickstart.py`` for the durability story);
6. kill one replica mid-traffic and show reads keep succeeding through
   automatic client failover.

Run with:  PYTHONPATH=src python examples/net_serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)
from repro.serving.net import ReplicaSet, ServingClient


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "model.npz"

        # 1. Train with checkpointing; the snapshot is the serving handoff.
        config = BPMFConfig(num_latent=8, alpha=4.0, burn_in=3, n_samples=5)
        options = SamplerOptions(
            checkpoint=CheckpointConfig(path=snapshot_path, every=2))
        GibbsSampler(config, options).run(train, split, seed=0)

        reference = PredictionService(snapshot_path)

        # 2. Two independent replicas; fused dispatch is the default, so
        #    concurrent top-N requests coalesce into one batched dispatch
        #    per window with zero added latency when idle.
        with ReplicaSet(lambda index: PredictionService(snapshot_path),
                        n_replicas=2) as replicas:
            print(f"serving on {replicas.addresses} (2 replicas, fused)")

            # 3. A concurrent burst: every fused response must be
            #    bit-identical to the single-process service.
            results: dict = {}

            def storm(users) -> None:
                with ServingClient(replicas.addresses) as client:
                    for user in users:
                        results[user] = client.top_n(user, n=5)

            threads = [threading.Thread(target=storm,
                                        args=(range(offset, 40, 4),))
                       for offset in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(results) == 40, "a storm thread dropped queries"
            for user, served in results.items():
                expected = reference.top_n(user, n=5)
                assert served.items.tolist() == expected.items.tolist()
                assert served.scores.tobytes() == expected.scores.tobytes()
            fusion = replicas.replicas[0].server.fuser.stats()
            print(f"{len(results)} fused queries, bit-identical to the "
                  f"single process ({fusion['fusion_windows']} windows on "
                  f"replica 0, largest {fusion['fusion_max_window']})")

            # 4. The same stream down ONE pipelined connection: id-tagged
            #    frames, up to 32 in flight, replies matched out of order.
            #    The client negotiated binary frames in the handshake, so
            #    item ids and scores crossed as raw little-endian arrays.
            with ServingClient(replicas.addresses) as piped:
                pipelined = piped.top_n_pipelined(range(40), n=5,
                                                  max_in_flight=32)
            for user, served in enumerate(pipelined):
                expected = reference.top_n(user, n=5)
                assert served.items.tolist() == expected.items.tolist()
                assert served.scores.tobytes() == expected.scores.tobytes()
            print(f"{len(pipelined)} pipelined queries on one connection, "
                  f"bit-identical again")

            # 5. Mutations over the wire replicate through the write
            #    leader (replica 0), so any replica accepts them; a
            #    pinned client works too.
            with ServingClient(replicas.addresses[:1]) as pinned:
                cold = pinned.fold_in(np.array([0, 3, 9]),
                                      np.array([5.0, 4.0, 4.5]))
                before = pinned.top_n(cold, n=5)
                pinned.rate(cold, np.array([17, 60]), np.array([1.0, 2.0]))
                after = pinned.top_n(cold, n=5)
                print(f"fold-in user {cold}: top-5 {before.items.tolist()} "
                      f"-> {after.items.tolist()} after rating 2 more items")
                health = pinned.health()
                print(f"replica 0 health: {health['status']}, "
                      f"{health['server']['n_requests']} requests served")

            # 6. Kill replica 0 mid-traffic: the client fails reads over to
            #    the survivor; nothing is dropped.
            with ServingClient(replicas.addresses, cooldown=0.1) as client:
                client.top_n(0, n=5)
                replicas.kill(0)
                for user in range(10):
                    served = client.top_n(user, n=5)
                    expected = reference.top_n(user, n=5)
                    assert served.items.tolist() == expected.items.tolist()
                print("killed replica 0; 10/10 reads succeeded through "
                      f"failover ({client.n_failovers} in-request retries)")


if __name__ == "__main__":
    main()
