#!/usr/bin/env python3
"""Drug-discovery scenario: multicore BPMF on a ChEMBL-like activity matrix.

This mirrors the paper's motivating application (ExCAPE / ChEMBL compound
activity prediction): compounds act as "users", protein targets as
"movies", and the pIC50-like activities are the ratings.  The script

1. generates a ChEMBL-like bioactivity matrix (heavy-tailed target
   popularity, ~2 measured activities per compound);
2. trains BPMF with the multicore sampler, centring the activities on the
   training mean as is standard for zero-mean factor priors;
3. reports test RMSE and shows how the hybrid update policy classifies the
   items (which is what makes load balancing necessary);
4. reproduces the Figure 3 thread sweep on the same workload.

Run with:  python examples/chembl_drug_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import BPMFConfig, HybridUpdatePolicy, MulticoreGibbsSampler
from repro.core.updates import UpdateMethod
from repro.datasets import make_chembl_like
from repro.multicore import MulticoreOptions, multicore_thread_sweep
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.tables import Table


def centre_split(split: RatingSplit) -> tuple[RatingSplit, float]:
    """Subtract the training mean from train and test values."""
    mean = split.train.mean_rating()
    users, movies, values = split.train.triplets()
    train = RatingMatrix.from_arrays(split.train.n_users, split.train.n_movies,
                                     users, movies, values - mean)
    return RatingSplit(train=train, test_users=split.test_users,
                       test_movies=split.test_movies,
                       test_values=split.test_values - mean), mean


def main() -> None:
    # Scaled-down ChEMBL v20 IC50 subset: same heavy-tailed structure as the
    # 483 500 x 5 775 matrix in the paper, ~1/150th the size.
    data = make_chembl_like(scale=150.0, seed=7, noise_std=0.4, value_spread=1.8)
    ratings = data.ratings
    print(f"ChEMBL-like matrix: {ratings.n_users} compounds x "
          f"{ratings.n_movies} targets, {ratings.nnz} activities "
          f"(density {100 * ratings.density:.2f}%)")

    degrees = ratings.movie_degrees()
    print(f"activities per target: median {int(np.median(degrees))}, "
          f"max {int(degrees.max())}  <- the load imbalance the paper addresses")

    # How the paper's hybrid policy classifies the per-item updates.
    policy = HybridUpdatePolicy()
    table = Table(["update kernel", "#targets", "#compounds"],
                  title="\nHybrid update-policy classification")
    compound_degrees = ratings.user_degrees()
    for method in UpdateMethod:
        n_targets = int(sum(1 for d in degrees if policy.choose(int(d)) is method))
        n_compounds = int(sum(1 for d in compound_degrees
                              if policy.choose(int(d)) is method))
        table.add_row(method.value, n_targets, n_compounds)
    print(table.render())

    # Train the multicore sampler on the centred activities.
    split, mean = centre_split(data.split)
    config = BPMFConfig(num_latent=16, alpha=4.0, burn_in=8, n_samples=20)
    sampler = MulticoreGibbsSampler(config, MulticoreOptions(n_threads=2))
    result = sampler.run(split.train, split, seed=0)
    baseline = float(np.sqrt(np.mean(split.test_values ** 2)))
    print(f"\ntest RMSE (pIC50 units): {result.final_rmse:.3f} "
          f"(predict-the-mean baseline: {baseline:.3f})")

    # Recommend new targets for one well-measured compound.
    compound = int(np.argmax(compound_degrees))
    measured, _ = ratings.user_ratings(compound)
    candidates = np.setdiff1d(np.arange(ratings.n_movies), measured)
    scores = result.state.predict(np.full(candidates.shape[0], compound), candidates) + mean
    top = candidates[np.argsort(-scores)[:5]]
    print(f"\ntop-5 predicted targets for compound {compound} "
          f"(already measured against {measured.shape[0]} targets):")
    for target in top:
        predicted = scores[np.nonzero(candidates == target)[0][0]]
        print(f"  target {int(target):4d}: predicted activity {predicted:.2f}")

    # Figure 3 on this workload: throughput vs simulated thread count.
    sweep = multicore_thread_sweep(ratings, num_latent=32,
                                   thread_counts=(1, 2, 4, 8, 16))
    print()
    print(sweep.to_table().render())
    print("TBB speed-up over 1 thread:",
          ", ".join(f"{value:.1f}x" for value in sweep.speedup("TBB")))


if __name__ == "__main__":
    main()
