#!/usr/bin/env python3
"""Serving quickstart: train -> snapshot -> resume -> serve -> fold in.

Walks the full lifecycle of the serving subsystem (`repro.serving`):

1. train BPMF with save-every-k-sweeps checkpointing;
2. resume the chain from the snapshot (bit-identical continuation);
3. load the snapshot into a :class:`PredictionService` and answer point,
   micro-batched and top-N queries;
4. fold in a cold-start user who was never seen at training time.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "model.npz"

        # 1. Train with checkpointing every 5 sweeps.  If this process died
        #    mid-run, `resume=snapshot_path` would pick up where it stopped.
        config = BPMFConfig(num_latent=6, alpha=8.0, burn_in=8, n_samples=12)
        options = SamplerOptions(
            checkpoint=CheckpointConfig(path=snapshot_path, every=5))
        result = GibbsSampler(config, options).run(train, split, seed=0)
        print(f"trained {config.total_iterations} sweeps, "
              f"posterior-mean RMSE {result.final_rmse:.4f}")
        print(f"snapshot written to {snapshot_path.name}")

        # 2. Resume the *same* chain for 8 extra samples — the snapshot
        #    carries the generator state, so this continues the exact
        #    bit stream an uninterrupted longer run would have used.
        longer = BPMFConfig(num_latent=6, alpha=8.0, burn_in=8, n_samples=20)
        resumed = GibbsSampler(longer, options).run(train, split,
                                                    resume=snapshot_path)
        print(f"resumed to sweep {resumed.state.iteration}, "
              f"RMSE {resumed.final_rmse:.4f}")

        # 3. Serve.  mode="mean" uses the running posterior-mean factors
        #    stored in the snapshot (better point predictions than any
        #    single Gibbs sample).
        service = PredictionService(snapshot_path, mode="mean", train=train)
        users, movies, values = split.test_triplets()
        served = service.predict_batch(users, movies)
        rmse = float(np.sqrt(np.mean((served - values) ** 2)))
        print(f"\nserving {service.n_users} users x {service.n_items} items; "
              f"test RMSE from the snapshot: {rmse:.4f}")

        # Point queries go through a micro-batcher under heavy traffic:
        # requests queue up and execute as one vectorized batch.
        batcher = service.batcher(max_batch=64)
        handles = [batcher.submit(int(user), int(movie))
                   for user, movie in zip(users[:10], movies[:10])]
        batcher.flush()
        print(f"micro-batched 10 requests in {batcher.n_flushes} flush(es); "
              f"first prediction {handles[0].result():.3f}")

        # Ranked retrieval hits the precomputed item block + LRU cache.
        top = service.top_n(0, n=5)
        print("top-5 for user 0:",
              ", ".join(f"{item}:{score:.2f}" for item, score in top.as_pairs()))

        # 4. Cold start: a brand-new user rates three items; their
        #    conditional posterior folds in through the batched
        #    block-Cholesky engine and they are served like anyone else.
        cold = service.fold_in(np.array([0, 1, 2]),
                               np.array([5.0, 4.0, 4.5]))
        cold_top = service.top_n(cold, n=5)
        print(f"fold-in user {cold} top-5:",
              ", ".join(f"{item}:{score:.2f}"
                        for item, score in cold_top.as_pairs()))


if __name__ == "__main__":
    main()
