#!/usr/bin/env python3
"""Quickstart: train BPMF on a synthetic rating matrix and evaluate RMSE.

Generates a small low-rank dataset with known ground truth, runs the
sequential Gibbs sampler, and compares the posterior-mean predictions
against the held-out test ratings and the ALS/SGD baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BPMFConfig, GibbsSampler, SamplerOptions, make_low_rank_dataset
from repro.baselines import run_als, run_sgd
from repro.utils.tables import Table


def main() -> None:
    # 1. A ground-truth low-rank dataset: 300 users x 200 movies, 6 latent
    #    dimensions, ~9k observed ratings, 20% held out for testing.
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split
    print(f"dataset: {train.n_users} users x {train.n_movies} movies, "
          f"{train.nnz} training ratings, {split.n_test} test ratings")

    # 2. BPMF: no regularisation parameter to tune — the Normal-Wishart
    #    hyperpriors are resampled from the data every Gibbs sweep.
    config = BPMFConfig(num_latent=6, alpha=8.0, burn_in=10, n_samples=30)
    sampler = GibbsSampler(config, SamplerOptions(verbose=False))
    result = sampler.run(train, split, seed=0)
    print(f"\nBPMF finished {config.total_iterations} Gibbs sweeps "
          f"({result.items_updated} item updates)")
    print(f"  RMSE of the first burn-in sample : {result.rmse_burn_in[0]:.4f}")
    print(f"  RMSE of the posterior mean       : {result.final_rmse:.4f}")
    print(f"  generating noise level           : {data.config.noise_std:.4f}")

    # 3. Baselines on exactly the same split (both need tuned hyperparameters).
    als = run_als(train, split, num_latent=6, n_iterations=20,
                  regularization=0.05, seed=0)
    sgd = run_sgd(train, split, num_latent=6, n_epochs=40,
                  learning_rate=0.05, regularization=0.02, seed=0)

    table = Table(["model", "test RMSE"], title="\nModel comparison")
    table.add_row("BPMF (posterior mean)", result.final_rmse)
    table.add_row("ALS (lambda = 0.05)", als.final_rmse)
    table.add_row("SGD (biased MF)", sgd.final_rmse)
    table.add_row("constant global mean",
                  float(np.sqrt(np.mean((split.test_values
                                         - train.mean_rating()) ** 2))))
    print(table.render())

    # 4. Posterior uncertainty: per-sample predictions give credible intervals,
    #    one of the practical advantages of the Bayesian treatment.
    options = SamplerOptions(keep_sample_predictions=True)
    short = GibbsSampler(BPMFConfig(num_latent=6, alpha=8.0, burn_in=5,
                                    n_samples=15), options)
    with_samples = short.run(train, split, seed=1)
    spread = with_samples.sample_predictions.std(axis=0)
    print(f"\nposterior predictive spread: median {np.median(spread):.3f}, "
          f"90th percentile {np.percentile(spread, 90):.3f}")


if __name__ == "__main__":
    main()
