#!/usr/bin/env python3
"""Chaos quickstart: a seeded fault schedule against a durable fleet.

Walks the chaos layer (`repro.serving.chaos`) end to end:

1. train BPMF and snapshot the posterior;
2. generate a :class:`FaultPlan` from a seed — the seed *is* the
   schedule: torn WAL writes, dropped replies, connection resets and a
   replica kill/pause timeline, all replayable byte-for-byte;
3. start a 3-replica durable :class:`ReplicaSet` with the WAL fault
   sites armed and a client whose sockets execute the scheduled
   network faults;
4. write through the chaos: every mutation retries on *retryable*
   errors until acked (write-id dedup keeps retries exactly-once);
5. read with a deadline: ``deadline_ms`` rides the frame, servers shed
   expired work instead of computing answers nobody awaits, and the
   client raises :class:`DeadlineError` rather than retrying forever;
6. let a :class:`FleetConductor` kill and restart a replica mid-storm;
7. verify the invariants that make chaos *testing* rather than chaos:
   the fleet converges to one digest, and that digest is bit-identical
   to a clean replay of the mutation log — no acked write was lost.

Run with:  PYTHONPATH=src python examples/chaos_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)
from repro.serving.chaos import FaultInjector, FaultPlan, FleetConductor
from repro.serving.net import DeadlineError, NetError, ReplicaSet, ServingClient
from repro.serving.wal import MutationReplayer, WriteAheadLog

SEED = 7


def commit(mutate):
    """Retry a mutation until acked — retryable errors only.

    Injected faults must always surface as retryable; anything else
    would mean the stack misclassified a fault, so let it raise.
    """
    while True:
        try:
            return mutate()
        except NetError as error:
            if not getattr(error, "retryable", False):
                raise
            time.sleep(0.05)


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        wal_dir = Path(tmp) / "mutation-log"
        config = BPMFConfig(num_latent=6, alpha=2.0, burn_in=4, n_samples=6)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            train, split, seed=0)

        # -- 1. the schedule is a pure function of the seed ----------------
        plan = FaultPlan.generate(seed=SEED, n_events=12, horizon=60,
                                  n_replicas=3, n_fleet_events=2,
                                  fleet_span=3.0)
        assert plan.digest() == FaultPlan.generate(
            seed=SEED, n_events=12, horizon=60, n_replicas=3,
            n_fleet_events=2, fleet_span=3.0).digest()
        print(f"fault plan (seed {SEED}, digest {plan.digest()[:12]}...):")
        for event in plan.events:
            print(f"  {event.site:<12} call #{event.step:<3} -> {event.action}")
        for event in plan.fleet:
            print(f"  fleet        t+{event.at:.1f}s     -> {event.action} "
                  f"replica {event.replica} ({event.arg:.1f}s)")

        injector = FaultInjector(plan)
        with ReplicaSet(lambda i: PredictionService(path), n_replicas=3,
                        wal_dir=str(wal_dir), wal_sync_every=1,
                        ship_cooldown=0.05, ship_backoff_max=1.0,
                        ship_backoff_seed=SEED,
                        fault_injector=injector) as replicas:
            client = ServingClient(replicas.addresses, timeout=2.0,
                                   cooldown=0.05, backoff_max=1.0,
                                   backoff_seed=SEED,
                                   fault_injector=injector)

            # -- 2. writes ride out the faults, exactly-once ---------------
            cold = commit(lambda: client.fold_in(
                np.array([3, 8, 21]), np.array([5.0, 4.0, 3.0])))
            for item, value in [(5, 4.0), (9, 2.0), (14, 5.0), (2, 3.0)]:
                commit(lambda: client.rate(cold, np.array([item]),
                                           np.array([value])))
            print(f"\nfolded in user {cold} and rated 4 items through "
                  f"{injector.stats()['triggered']} injected faults")

            # -- 3. a kill/pause timeline runs against the live fleet ------
            conductor = FleetConductor(replicas, plan.fleet)
            conductor.start()

            # -- 4. reads carry deadlines; expired work is shed ------------
            n_ok = n_deadline = n_retryable = 0
            reference = PredictionService(path)
            for _ in range(200):
                try:
                    served = client.top_n(7, n=5, deadline_ms=500.0)
                except DeadlineError:
                    n_deadline += 1        # budget spent: shed, not hung
                    continue
                except NetError as error:
                    assert getattr(error, "retryable", False), error
                    n_retryable += 1
                    continue
                expected = reference.top_n(7, n=5)
                assert served.items.tolist() == expected.items.tolist()
                assert served.scores.tobytes() == expected.scores.tobytes()
                n_ok += 1
            print(f"reads under chaos: {n_ok} bit-exact, "
                  f"{n_deadline} deadline-shed, {n_retryable} retryable")

            fleet_log = conductor.finish(timeout=60.0)
            for entry in fleet_log:
                print(f"  fleet log: t+{entry['at']:.1f}s {entry['action']} "
                      f"replica {entry['replica']}")

            # -- 5. convergence + durability: the ground truth -------------
            commit(lambda: client.rate(cold, np.array([30]),
                                       np.array([4.0])))
            target = client.last_seqno
            digests = {}
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                digests = {}
                for address in replicas.addresses:
                    try:
                        with ServingClient([address], timeout=2.0) as probe:
                            health = probe.health(digest=True)
                            digests[address] = (
                                health["digest"],
                                health["wal"]["applied_seqno"])
                    except NetError:
                        break
                if len(digests) == 3 and all(
                        seqno >= target for _, seqno in digests.values()) \
                        and len({d for d, _ in digests.values()}) == 1:
                    break
                commit(lambda: client.rate(cold, np.array([31]),
                                           np.array([1.0])))
                target = client.last_seqno
                time.sleep(0.2)
            assert len({d for d, _ in digests.values()}) == 1, digests
            fleet_digest = next(iter(digests.values()))[0]
            print(f"\nfleet converged on digest {fleet_digest[:12]}... "
                  f"at seqno {target}")
            client.close()

        # Replay the raw log into a fresh service: bit-identical state
        # proves no acked write was lost to any injected fault.
        clean = PredictionService(path)
        replayer = MutationReplayer(clean)
        with WriteAheadLog(str(wal_dir)) as log:
            replayer.apply_all(log.records())
        assert clean.state_digest() == fleet_digest
        print("clean replay of the WAL matches the fleet digest exactly — "
              "every acked write survived the schedule")


if __name__ == "__main__":
    main()
