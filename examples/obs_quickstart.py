#!/usr/bin/env python3
"""Observability quickstart: trace a write across the fleet, read the
unified metrics registry.

Walks the observability layer (`repro.obs`) end to end:

1. train BPMF and snapshot the posterior;
2. start a traced 3-replica durable :class:`ReplicaSet` — one shared
   :class:`Tracer` ring buffer, one fleet-wide
   :class:`MetricsRegistry` with every component's stats re-homed as
   providers under dotted names (``serving.server.*``, ``wal.*``, ...);
3. send one traced write and print its span *tree*: client attempt →
   server admission (queue-wait split out) → WAL commit → append/fsync
   → ship → each follower's apply, all under a single ``trace_id``;
4. storm the fleet a little so request fusion kicks in, and show a
   ``fusion.window`` parent with its per-rider ``fusion.waiter``
   children;
5. read the same telemetry over the wire: the ``metrics`` frame
   renders the fleet-wide dotted snapshot and the ``trace`` frame
   exports (and can drain) the server-side span buffer.

Run with:  PYTHONPATH=src python examples/obs_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)
from repro.obs import Tracer
from repro.serving.net import ReplicaSet, ServingClient


def print_tree(spans, root, depth=0):
    """Print a span subtree, children indented under their parent."""
    print(f"  {'  ' * depth}{root['name']:<20} "
          f"{root['dur_ms']:8.3f} ms  {root['attrs']}")
    children = [span for span in spans
                if span["parent_id"] == root["span_id"]]
    for child in sorted(children, key=lambda span: span["ts"]):
        print_tree(spans, child, depth + 1)


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "model.npz"
        config = BPMFConfig(num_latent=6, alpha=2.0, burn_in=4, n_samples=6)
        GibbsSampler(config, SamplerOptions(
            checkpoint=CheckpointConfig(path=path, every=2))).run(
            train, split, seed=0)

        # -- 1. one tracer, one registry, the whole fleet ------------------
        tracer = Tracer(capacity=8192)
        with ReplicaSet(lambda i: PredictionService(path), n_replicas=3,
                        wal_dir=str(Path(tmp) / "mutation-log"),
                        wal_sync_every=1, ship_cooldown=0.05,
                        fuse_window_ms=25.0, tracer=tracer) as replicas:
            with ServingClient(replicas.addresses, tracer=tracer) as client:

                # -- 2. one traced write, end to end -----------------------
                client.fold_in(np.array([3, 8, 21]),
                               np.array([5.0, 4.0, 3.0]))
                # Wait for both followers to apply the shipped record.
                deadline_spans = []
                while sum(1 for span in deadline_spans
                          if span["name"] == "wal.follower_apply") < 2:
                    deadline_spans = tracer.spans()
                spans = tracer.spans()
                root = next(span for span in spans
                            if span["name"] == "client.foldin")
                print("the write's span tree (one trace_id "
                      f"{root['trace_id'][:12]}...):")
                print_tree(spans, root)

                # -- 3. fused reads: one window, many riders ---------------
                barrier = threading.Barrier(4)

                def reader(user):
                    with ServingClient(replicas.addresses[:1],
                                       tracer=tracer) as reader_client:
                        barrier.wait()
                        reader_client.top_n(user, n=5)

                threads = [threading.Thread(target=reader, args=(user,))
                           for user in range(4)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                spans = tracer.spans()
                windows = [span for span in spans
                           if span["name"] == "fusion.window"]
                best = max(windows, key=lambda span: span["attrs"]["users"])
                print(f"\nbusiest fused window ({best['attrs']['users']} "
                      "riders):")
                print_tree(spans, best)

                # -- 4. the same telemetry over the wire -------------------
                snapshot = client.metrics()
                print("\nfleet metrics (a few of "
                      f"{len(snapshot)} series):")
                for key in sorted(snapshot):
                    if key.startswith(("serving.server.requests",
                                       "wal.applied_seqno")):
                        print(f"  {key} = {snapshot[key]}")
                queue = snapshot["serving.server.queue_wait_ms{replica=0}"]
                print(f"  queue wait on replica 0: p50={queue['p50']:.3f} "
                      f"p99={queue['p99']:.3f} over {queue['count']} reqs")

                exported = client.spans(limit=5, drain=True)
                print(f"\ntrace frame exported {len(exported['spans'])} "
                      f"spans (server buffer had "
                      f"{exported['tracer']['finished']} finished)")


if __name__ == "__main__":
    main()
