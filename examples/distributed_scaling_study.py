#!/usr/bin/env python3
"""Strong-scaling study: regenerate the paper's Figures 4 and 5.

Builds a MovieLens-shaped structural workload, configures a BlueGene/Q-like
machine model (16-core nodes, 32-node racks, shared rack uplinks, per-node
cache) and sweeps the node count, printing the per-figure data tables:

* Figure 4 — item updates per second and parallel efficiency per node count
  (good / super-linear scaling up to one rack, degradation beyond it);
* Figure 5 — the share of time each configuration spends computing,
  communicating, and doing both (how much the asynchronous communication
  manages to overlap).

The workload size and node range are configurable from the command line,
e.g. ``python examples/distributed_scaling_study.py --ratings 10000000
--max-nodes 1024`` for a closer-to-paper-scale run (a few minutes).

Run with:  python examples/distributed_scaling_study.py
"""

from __future__ import annotations

import argparse

from repro.bench.fig4_strong_scaling import bluegene_like_config
from repro.datasets import make_scaling_workload
from repro.distributed import strong_scaling_study


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--users", type=int, default=138_493 // 2,
                        help="number of users in the structural workload")
    parser.add_argument("--movies", type=int, default=27_278 // 2,
                        help="number of movies in the structural workload")
    parser.add_argument("--ratings", type=int, default=3_000_000,
                        help="requested number of ratings (realised is lower)")
    parser.add_argument("--max-nodes", type=int, default=256,
                        help="largest node count in the sweep (power of two)")
    parser.add_argument("--latent", type=int, default=64,
                        help="latent dimension K used for the kernel costs")
    parser.add_argument("--seed", type=int, default=13)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    node_counts = [1]
    while node_counts[-1] * 2 <= args.max_nodes:
        node_counts.append(node_counts[-1] * 2)

    print("generating structural workload "
          f"({args.users} users x {args.movies} movies, "
          f"{args.ratings} requested ratings)...")
    workload = make_scaling_workload(n_users=args.users, n_movies=args.movies,
                                     n_ratings=args.ratings, seed=args.seed)
    print(f"realised ratings after de-duplication: {workload.nnz}")

    config = bluegene_like_config(num_latent=args.latent)
    print(f"machine model: {config.cluster.cores_per_node} cores/node, "
          f"{config.cluster.rack_size}-node racks, "
          f"{config.cluster.cache_bytes // (1024 * 1024)} MB cache/node")

    study = strong_scaling_study(workload, node_counts=node_counts, config=config)

    print()
    print(study.to_table().render())
    print()
    print(study.breakdown_table().render())

    # Narrate the two headline observations of the paper.
    rack = config.cluster.rack_size
    inside = [p for p in study.points if p.n_nodes <= rack]
    outside = [p for p in study.points if p.n_nodes > rack]
    best_inside = max(p.parallel_efficiency for p in inside)
    print(f"\nbest parallel efficiency inside one rack : {100 * best_inside:.0f}%"
          + (" (super-linear)" if best_inside > 1.0 else ""))
    if outside:
        first_outside = outside[0]
        print(f"efficiency just past the rack boundary   : "
              f"{100 * first_outside.parallel_efficiency:.0f}% "
              f"at {first_outside.n_nodes} nodes")
        last = study.points[-1]
        shares = last.breakdown_fractions()
        print(f"at {last.n_nodes} nodes the iteration spends "
              f"{100 * shares['communicate']:.0f}% of its time communicating "
              f"and only {100 * shares['compute']:.0f}% purely computing.")


if __name__ == "__main__":
    main()
