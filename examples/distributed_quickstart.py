#!/usr/bin/env python3
"""Quickstart: distributed BPMF training over real localhost sockets.

Trains the same fixed-seed chain three ways — the sequential sampler,
the distributed sampler over the *simulated* MPI world, and the
distributed sampler over a 2-rank *socket* world (real TCP links,
binary frames, flush barriers) — and checks that all three are
bit-identical: same factors, same RMSE trajectory, same predictions,
random ties included.

The socket ranks here are two threads in this process, each owning a
real `SocketCommWorld` endpoint (the full wire path without spawning OS
processes).  For real multi-process training use the launcher:

    python -m repro.mpi.net --spawn --world 4 --program train

Run with:  PYTHONPATH=src python examples/distributed_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import BPMFConfig, GibbsSampler, SamplerOptions, make_low_rank_dataset
from repro.distributed.sampler import (
    DistributedGibbsSampler,
    DistributedOptions,
)
from repro.distributed.spmd import run_local_socket_world


def main() -> None:
    # 1. A small ground-truth dataset, and one configuration shared by
    #    every run below.
    data = make_low_rank_dataset(n_users=120, n_movies=90, rank=4,
                                 density=0.15, noise_std=0.3, seed=42)
    train, split = data.split.train, data.split
    config = BPMFConfig(num_latent=6, alpha=8.0, burn_in=3, n_samples=6)
    seed = 11
    print(f"dataset: {train.n_users} users x {train.n_movies} movies, "
          f"{train.nnz} training ratings")

    # 2. The sequential reference chain.
    sequential = GibbsSampler(config, SamplerOptions()).run(
        train, split, seed=seed)
    print(f"sequential        final RMSE {sequential.final_rmse:.6f}")

    # 3. The same chain, distributed over the simulated MPI world.  In
    #    "gather" hyper-parameter mode the distributed chain consumes the
    #    random stream exactly like the sequential sampler, so the two
    #    match bit for bit.
    options = DistributedOptions(n_ranks=2, hyper_mode="gather",
                                 buffer_capacity=16)
    simulated, sim_info = DistributedGibbsSampler(config, options).run(
        train, split, seed=seed)
    print(f"simulated MPI     final RMSE {simulated.final_rmse:.6f} "
          f"({sim_info.n_messages} messages)")

    # 4. The same chain again, over a 2-rank socket world: every factor
    #    block crosses a real TCP link as a binary frame.  Rank 0 holds
    #    the evaluated result; rank 1 holds only its own blocks.
    outcomes = run_local_socket_world(
        lambda: DistributedGibbsSampler(config, options),
        2, train, split, seed=seed)
    socket_result, socket_info = outcomes[0]
    print(f"socket MPI        final RMSE {socket_result.final_rmse:.6f} "
          f"({socket_info.n_messages} messages from rank 0, "
          f"{socket_info.bytes_sent / 1e3:.1f} kB)")

    # 5. Bit-parity, not approximate agreement.
    for name, result in [("simulated", simulated), ("socket", socket_result)]:
        assert np.array_equal(result.state.user_factors,
                              sequential.state.user_factors)
        assert np.array_equal(result.state.movie_factors,
                              sequential.state.movie_factors)
        assert result.rmse_running_mean == sequential.rmse_running_mean
        assert np.array_equal(result.predictions, sequential.predictions)
        print(f"{name:9s} chain is bit-identical to the sequential chain")


if __name__ == "__main__":
    main()
