#!/usr/bin/env python3
"""Cold-start prediction with Macau-style side information.

The paper points out that BPMF "easily incorporates confidence intervals
and side-information", citing the group's Macau model.  This example shows
why that matters for the drug-discovery use case: brand-new protein targets
(or compounds) have *no* measured activities, so plain BPMF can only predict
the global prior for them — but when a feature vector is available (sequence
descriptors, assay annotations, genres for movies), the learned link matrix
maps features to latent factors and recovers useful predictions.

The script builds a dataset whose item factors are generated from known
features, removes every rating of a few "new" items, and compares plain BPMF
against the side-information sampler on exactly those cold items.

Run with:  python examples/cold_start_side_information.py
"""

from __future__ import annotations

import numpy as np

from repro import BPMFConfig, GibbsSampler, MacauGibbsSampler, SideInfo
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.tables import Table


def build_dataset(seed: int = 0, n_users: int = 200, n_movies: int = 120,
                  n_features: int = 6, density: float = 0.12,
                  noise_std: float = 0.25):
    """Ratings whose movie factors are a linear function of movie features."""
    rng = np.random.default_rng(seed)
    k = n_features
    movie_features = rng.normal(size=(n_movies, n_features))
    link = rng.normal(size=(n_features, k)) / np.sqrt(n_features)
    movie_factors = movie_features @ link
    user_factors = rng.normal(size=(n_users, k)) / np.sqrt(k)

    flat = rng.choice(n_users * n_movies, size=int(density * n_users * n_movies),
                      replace=False)
    users, movies = flat // n_movies, flat % n_movies
    values = (np.einsum("ij,ij->i", user_factors[users], movie_factors[movies])
              + rng.normal(scale=noise_std, size=flat.shape[0]))
    ratings = RatingMatrix.from_arrays(n_users, n_movies, users, movies, values)
    return ratings, movie_features


def main() -> None:
    ratings, movie_features = build_dataset()
    print(f"dataset: {ratings.n_users} users x {ratings.n_movies} items, "
          f"{ratings.nnz} ratings, {movie_features.shape[1]} features per item")

    # Declare 10% of the items "new": all of their ratings become the test set.
    rng = np.random.default_rng(1)
    cold_items = rng.choice(ratings.n_movies, size=ratings.n_movies // 10,
                            replace=False)
    users, movies, values = ratings.triplets()
    is_cold = np.isin(movies, cold_items)
    train = RatingMatrix.from_arrays(ratings.n_users, ratings.n_movies,
                                     users[~is_cold], movies[~is_cold],
                                     values[~is_cold])
    split = RatingSplit(train=train, test_users=users[is_cold],
                        test_movies=movies[is_cold], test_values=values[is_cold])
    print(f"cold-start items: {cold_items.shape[0]} "
          f"({split.n_test} held-out ratings, zero training ratings each)")

    config = BPMFConfig(num_latent=6, alpha=10.0, burn_in=8, n_samples=20)

    plain = GibbsSampler(config).run(train, split, seed=0)
    macau = MacauGibbsSampler(
        config, movie_side=SideInfo(movie_features, lambda_link=2.0)
    ).run(train, split, seed=0)
    baseline = float(np.sqrt(np.mean(split.test_values ** 2)))

    table = Table(["model", "cold-start RMSE"],
                  title="\nPredicting items that have never been rated")
    table.add_row("predict the prior mean (no model)", baseline)
    table.add_row("plain BPMF", plain.final_rmse)
    table.add_row("BPMF + side information (Macau-style)", macau.final_rmse)
    print(table.render())

    improvement = 100.0 * (1.0 - macau.final_rmse / plain.final_rmse)
    print(f"\nside information reduces cold-start RMSE by {improvement:.0f}% "
          "on this dataset — plain BPMF cannot do better than the prior for "
          "items it has never observed.")


if __name__ == "__main__":
    main()
