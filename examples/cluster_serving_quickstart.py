#!/usr/bin/env python3
"""Cluster serving quickstart: shard -> query -> fold in -> hot swap.

Walks the serving-cluster subsystem (`repro.serving.cluster`):

1. train BPMF and snapshot the posterior;
2. serve it through a sharded worker-pool gateway
   (:class:`ShardedScorer`) and verify the ranking is bit-identical to
   the single-process :class:`PredictionService`;
3. fold in a cold-start user, then apply an incremental rank-k update
   when they rate more items;
4. keep training (longer chain, same snapshot file) and let a
   :class:`SnapshotWatcher` hot-swap the new posterior in while queries
   keep flowing.

Run with:  PYTHONPATH=src python examples/cluster_serving_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)
from repro.serving.cluster import ShardedScorer, SnapshotWatcher


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "model.npz"

        # 1. Train with checkpointing; the snapshot is the serving handoff.
        config = BPMFConfig(num_latent=8, alpha=4.0, burn_in=3, n_samples=5)
        options = SamplerOptions(
            checkpoint=CheckpointConfig(path=snapshot_path, every=2))
        GibbsSampler(config, options).run(train, split, seed=0)

        # 2. A 4-shard gateway over a persistent worker pool.  Results are
        #    bit-identical to the single-process service.
        reference = PredictionService(snapshot_path, train=train)
        with ShardedScorer(snapshot_path, n_shards=4, train=train) as scorer:
            for user in (0, 7, 42):
                served = scorer.top_n(user, n=5)
                expected = reference.top_n(user, n=5)
                assert served.items.tolist() == expected.items.tolist()
                assert served.scores.tobytes() == expected.scores.tobytes()
                print(f"user {user:3d} top-5: "
                      + " ".join(f"{i}:{s:.3f}" for i, s in served.as_pairs()))
            print("sharded ranking is bit-identical to the single process")

            # 3. Cold start + incremental fold-in: the second call is a
            #    rank-k posterior update, not a re-fold of the history.
            cold = scorer.fold_in(np.array([0, 3, 9]),
                                  np.array([5.0, 4.0, 4.5]))
            before = scorer.top_n(cold, n=5)
            scorer.add_ratings(cold, np.array([17, 60]),
                               np.array([1.0, 2.0]))
            after = scorer.top_n(cold, n=5)
            print(f"fold-in user {cold}: top-5 {before.items.tolist()} "
                  f"-> {after.items.tolist()} after rating 2 more items")

            # 4. Serve while training: extend the chain (overwriting the
            #    snapshot) and let the watcher hot-swap it in.
            watcher = SnapshotWatcher(scorer, snapshot_path)
            longer = BPMFConfig(num_latent=8, alpha=4.0, burn_in=3,
                                n_samples=10)
            GibbsSampler(longer, SamplerOptions(
                checkpoint=CheckpointConfig(path=snapshot_path, every=4))
            ).run(train, split, resume=snapshot_path)
            assert watcher.check_once(), "no new snapshot detected?"
            print(f"hot-swapped to version {scorer.version} "
                  f"(sweep {load_iteration(snapshot_path)}) without "
                  f"dropping a request")

            fresh = PredictionService(snapshot_path, train=train)
            served = scorer.top_n(0, n=5)
            assert served.scores.tobytes() == fresh.top_n(0, n=5).scores.tobytes()
            print("post-swap ranking matches a service on the new snapshot")
            print(f"gateway stats: {scorer.stats()}")


def load_iteration(path: Path) -> int:
    from repro.serving.checkpoint import load_snapshot

    return load_snapshot(path).state.iteration


if __name__ == "__main__":
    main()
