#!/usr/bin/env python3
"""Movie-recommendation scenario: distributed BPMF on a MovieLens-like dataset.

Demonstrates the distributed sampler end to end on a MovieLens-shaped
star-rating matrix: the workload-aware partitioning of users and movies
over simulated MPI ranks, the item exchange driven by the sparsity pattern,
and the fact that the distributed run reproduces the sequential sampler's
accuracy (the paper's Section V-B claim).  Finishes with top-N movie
recommendations for a few users.

Run with:  python examples/movielens_recommender.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BPMFConfig,
    DistributedGibbsSampler,
    DistributedOptions,
    GibbsSampler,
)
from repro.datasets import make_movielens_like
from repro.utils.tables import Table


def main() -> None:
    # MovieLens-like star ratings (~1/200th of ml-20m).
    data = make_movielens_like(scale=200.0, seed=3)
    ratings = data.ratings
    print(f"MovieLens-like matrix: {ratings.n_users} users x "
          f"{ratings.n_movies} movies, {ratings.nnz} ratings "
          f"(mean {ratings.mean_rating():.2f} stars)")

    # Centre on the global mean (standard for zero-mean factor priors).
    mean = data.split.train.mean_rating()
    users, movies, values = data.split.train.triplets()
    from repro.sparse.csr import RatingMatrix
    from repro.sparse.split import RatingSplit
    train = RatingMatrix.from_arrays(ratings.n_users, ratings.n_movies,
                                     users, movies, values - mean)
    split = RatingSplit(train=train, test_users=data.split.test_users,
                        test_movies=data.split.test_movies,
                        test_values=data.split.test_values - mean)

    config = BPMFConfig(num_latent=12, alpha=2.0, burn_in=8, n_samples=20)

    # Sequential reference and 4-rank distributed run with the same seed.
    sequential = GibbsSampler(config).run(train, split, seed=0)
    distributed, info = DistributedGibbsSampler(
        config,
        DistributedOptions(n_ranks=4, buffer_capacity=64, hyper_mode="gather"),
    ).run(train, split, seed=0)

    table = Table(["implementation", "test RMSE (stars)"],
                  title="\nAccuracy parity (same seed)")
    table.add_row("sequential Gibbs sampler", sequential.final_rmse)
    table.add_row("distributed, 4 simulated ranks", distributed.final_rmse)
    print(table.render())
    assert np.isclose(sequential.final_rmse, distributed.final_rmse)

    # What the distributed execution actually did.
    partition = info.partition
    sizes = partition.rank_sizes()
    print("\ndata distribution over ranks (users, movies):",
          ", ".join(f"rank {r}: {u}/{m}" for r, (u, m) in enumerate(sizes)))
    print(f"items exchanged per iteration : {info.items_exchanged_per_iteration}")
    print(f"messages posted (whole run)   : {info.n_messages}")
    print(f"average items per message     : {info.buffer_stats.items_per_message:.1f}")
    print(f"data volume sent              : {info.bytes_sent / 1e6:.1f} MB")

    # Top-5 recommendations for the three most active users.
    state = distributed.state
    most_active = np.argsort(-ratings.user_degrees())[:3]
    for user in most_active:
        seen, _ = ratings.user_ratings(int(user))
        candidates = np.setdiff1d(np.arange(ratings.n_movies), seen)
        scores = state.predict(np.full(candidates.shape[0], user), candidates) + mean
        top = candidates[np.argsort(-scores)[:5]]
        stars = np.clip(np.sort(scores)[::-1][:5], 0.5, 5.0)
        print(f"\nuser {int(user)} (rated {seen.shape[0]} movies) — top-5 picks: "
              + ", ".join(f"movie {int(m)} ({s:.1f}*)"
                          for m, s in zip(top, stars)))


if __name__ == "__main__":
    main()
