#!/usr/bin/env python3
"""Durable mutations quickstart: WAL -> leader kill -> exact recovery.

Walks the durable replicated mutation log (`repro.serving.wal`):

1. train BPMF and snapshot the posterior;
2. start a 3-replica :class:`ReplicaSet` with ``wal_dir`` set — replica
   0 is the write leader, every mutation is CRC-framed and fsynced into
   an append-only segment log before it is acked, then shipped to the
   followers over the same framed RPC (``wal_append``);
3. fold a cold-start user in and rate items through the ring client,
   then verify read-your-writes on EVERY replica: all three serve the
   new user and report the same state digest and applied seqno;
4. kill the leader mid-session: reads keep flowing through client
   failover while writes fail loudly (``retryable`` refusals — nothing
   is half-applied);
5. restart the leader: it replays its durable log (every acked write
   returns, write-id dedup intact) and writes resume exactly-once;
6. ground truth: replay the raw log into a FRESH single-process
   gateway and show its digest is bit-identical to the fleet's.

Run with:  PYTHONPATH=src python examples/wal_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    BPMFConfig,
    CheckpointConfig,
    GibbsSampler,
    PredictionService,
    SamplerOptions,
    make_low_rank_dataset,
)
from repro.serving.net import NetError, ReplicaSet, ServingClient
from repro.serving.wal import MutationReplayer, WriteAheadLog


def fleet_digests(replicas: ReplicaSet) -> dict:
    """State digest per live replica, via pinned health probes."""
    digests = {}
    for address in replicas.addresses:
        with ServingClient([address]) as probe:
            health = probe.health(digest=True)
            digests[address] = (health["digest"],
                                health["wal"]["applied_seqno"])
    return digests


def main() -> None:
    data = make_low_rank_dataset(n_users=300, n_movies=200, rank=6,
                                 density=0.15, noise_std=0.3, factor_std=1.5,
                                 seed=42)
    train, split = data.split.train, data.split

    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "model.npz"
        wal_dir = Path(tmp) / "wal"

        # 1. Train with checkpointing; the snapshot is the serving handoff.
        config = BPMFConfig(num_latent=8, alpha=4.0, burn_in=3, n_samples=5)
        options = SamplerOptions(
            checkpoint=CheckpointConfig(path=snapshot_path, every=2))
        GibbsSampler(config, options).run(train, split, seed=0)

        # 2. Three replicas sharing one durable mutation log.  Replica 0
        #    is the write leader; `wal_dir` makes every ack mean "on
        #    disk", `wal_sync_every=1` fsyncs each record (raise it to
        #    trade durability lag for commit latency).
        with ReplicaSet(lambda index: PredictionService(snapshot_path),
                        n_replicas=3, wal_dir=str(wal_dir),
                        wal_sync_every=1) as replicas:
            print(f"serving on {replicas.addresses} "
                  f"(3 replicas, durable log at {wal_dir})")

            # 3. Mutations through the ring: the client attaches a
            #    write id to each, so retries apply exactly once.
            with ServingClient(replicas.addresses) as client:
                cold = client.fold_in(np.array([0, 3, 9]),
                                      np.array([5.0, 4.0, 4.5]))
                client.rate(cold, np.array([17, 60]), np.array([1.0, 2.0]))
                acked = client.last_seqno
            print(f"folded in user {cold}; 2 writes acked "
                  f"(log seqno {acked})")

            digests = fleet_digests(replicas)
            assert len(set(digests.values())) == 1, digests
            for address, (digest, applied) in digests.items():
                assert applied == acked
                print(f"  {address}: applied_seqno={applied} "
                      f"digest={digest[:12]}...")

            # 4. Kill the leader: reads ride failover, writes refuse.
            replicas.kill(0)
            with ServingClient(replicas.addresses, cooldown=0.1) as reader:
                served = reader.top_n(cold, n=5)
                print(f"leader down: top-5 for user {cold} still served "
                      f"-> {served.items.tolist()}")
                try:
                    reader.rate(cold, np.array([80]), np.array([3.0]))
                except NetError as error:
                    print(f"leader down: write refused loudly ({error})")
                else:
                    raise AssertionError("write should fail with no leader")

            # 5. Restart it: the log replays, dedup state and every
            #    acked write come back, and writes resume.
            replicas.restart(0)
            with ServingClient(replicas.addresses) as client:
                client.rate(cold, np.array([80]), np.array([3.0]))
                final_seqno = client.last_seqno
            print(f"leader restarted from its log; write resumed "
                  f"(log seqno {final_seqno})")

            digests = fleet_digests(replicas)
            assert len(set(digests.values())) == 1, digests
            fleet_digest = next(iter(digests.values()))[0]

            # 6. Ground truth: a fresh gateway + the raw log must land
            #    on the same bits as the live fleet.
            replay_service = PredictionService(snapshot_path)
            replayer = MutationReplayer(replay_service)
            with WriteAheadLog(str(wal_dir)) as log:
                replayer.apply_all(log.records())
            assert replayer.applied_seqno == final_seqno
            assert replay_service.state_digest() == fleet_digest
            print(f"clean replay of {replayer.n_replayed} records matches "
                  f"the fleet digest bit-for-bit ({fleet_digest[:12]}...)")


if __name__ == "__main__":
    main()
