"""Ablation: workload-aware, locality-reordered partitioning (DESIGN.md §5).

Section IV-B of the paper reorders the rows/columns of ``R`` and balances a
fixed-plus-per-rating workload model when distributing ``U`` and ``V``.
This ablation compares that data distribution against a naive split
(natural order, equal item counts) on a community-structured workload and
reports both the amount of data exchanged per iteration and the resulting
modelled throughput, plus the asynchronous-versus-bulk-synchronous
communication comparison that motivates the paper's design.
"""

from __future__ import annotations

import numpy as np

from repro.datasets import make_scaling_workload
from repro.distributed.comm_plan import build_comm_plan
from repro.distributed.partition import Partition, partition_ratings
from repro.distributed.scaling import ScalingConfig, strong_scaling_study
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.parallel.cost_model import WorkloadModel
from repro.utils.tables import Table

NODES = 16


def _naive_partition(ratings, n_ranks: int) -> Partition:
    """Natural order, equal item counts, no workload model."""
    user_owner = (np.arange(ratings.n_users) * n_ranks // ratings.n_users)
    movie_owner = (np.arange(ratings.n_movies) * n_ranks // ratings.n_movies)
    return Partition(n_ranks=n_ranks, user_owner=user_owner.astype(np.int64),
                     movie_owner=movie_owner.astype(np.int64))


def test_partitioning_ablation(benchmark):
    def run_ablation():
        # A clustered workload whose natural order has been shuffled, so the
        # reordering actually has something to recover.
        ratings = make_scaling_workload(n_users=20_000, n_movies=4_000,
                                        n_ratings=600_000, n_communities=NODES,
                                        community_bias=0.85, seed=21)
        rng = np.random.default_rng(3)
        shuffled = ratings.permute(rng.permutation(ratings.n_users),
                                   rng.permutation(ratings.n_movies))

        workload = WorkloadModel()
        smart = partition_ratings(shuffled, NODES, workload=workload, reorder=True)
        naive = _naive_partition(shuffled, NODES)
        smart_plan = build_comm_plan(shuffled, smart)
        naive_plan = build_comm_plan(shuffled, naive)

        config = ScalingConfig(num_latent=64,
                               cluster=ClusterSpec(rack_size=32),
                               network=NetworkModel(intra_bandwidth=1.8e9,
                                                    inter_bandwidth=0.7e9))
        smart_study = strong_scaling_study(shuffled, node_counts=(NODES,),
                                           config=config)
        naive_config = ScalingConfig(**{**config.__dict__, "reorder": False})
        naive_study = strong_scaling_study(shuffled, node_counts=(NODES,),
                                           config=naive_config)
        sync_config = ScalingConfig(**{**config.__dict__,
                                       "overlap_communication": False})
        sync_study = strong_scaling_study(shuffled, node_counts=(NODES,),
                                          config=sync_config)
        return {
            "smart_items": smart_plan.total_items_exchanged(),
            "naive_items": naive_plan.total_items_exchanged(),
            "smart_imbalance": smart.imbalance(shuffled, workload),
            "naive_imbalance": naive.imbalance(shuffled, workload),
            "smart_throughput": smart_study.point(NODES).throughput,
            "naive_throughput": naive_study.point(NODES).throughput,
            "sync_throughput": sync_study.point(NODES).throughput,
        }

    metrics = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = Table(["data distribution", "items exchanged / iter",
                   "work imbalance", f"modelled items/s on {NODES} nodes"],
                  title="Partitioning ablation")
    table.add_row("workload-aware + reordered", metrics["smart_items"],
                  metrics["smart_imbalance"], metrics["smart_throughput"])
    table.add_row("naive natural-order split", metrics["naive_items"],
                  metrics["naive_imbalance"], metrics["naive_throughput"])
    print()
    print(table.render())
    print(f"asynchronous overlap: {metrics['smart_throughput']:.0f} items/s vs "
          f"bulk-synchronous {metrics['sync_throughput']:.0f} items/s")

    # The paper's data distribution exchanges no more data and is at least as
    # balanced as the naive split...
    assert metrics["smart_items"] <= metrics["naive_items"]
    assert metrics["smart_imbalance"] <= metrics["naive_imbalance"] + 0.05
    # ...and asynchronous overlap never loses to the synchronous exchange.
    assert metrics["smart_throughput"] >= metrics["sync_throughput"]
