"""Benchmark: Figure 4 — distributed strong scaling on the MovieLens workload.

Runs the strong-scaling model on a MovieLens-shaped structural workload
with a BlueGene/Q-like machine model over 1–256 nodes (16–4096 cores) and
checks the figure's headline shape: throughput grows with node count and
scaling is good — super-linear in the cache-friendly region — up to one
32-node rack, then degrades significantly once the allocation spans racks.
"""

from __future__ import annotations

from repro.bench.fig4_strong_scaling import run_fig4

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


def test_fig4_strong_scaling(benchmark, movielens_scaling_workload, scaling_config):
    result = benchmark.pedantic(
        run_fig4,
        kwargs=dict(ratings=movielens_scaling_workload, node_counts=NODE_COUNTS,
                    config=scaling_config),
        rounds=1, iterations=1)

    print()
    print(f"workload: {result.workload_shape[0]} users x "
          f"{result.workload_shape[1]} movies, {result.workload_nnz} ratings")
    print(result.to_table().render())

    points = {p.n_nodes: p for p in result.scaling.points}
    throughput = result.throughput_series()
    efficiency = {p.n_nodes: p.parallel_efficiency for p in result.scaling.points}

    # Throughput keeps increasing up to (at least) one rack.
    in_rack = [points[n].throughput for n in NODE_COUNTS if n <= 32]
    assert in_rack == sorted(in_rack)
    assert points[32].throughput > 10.0 * points[1].throughput

    # Scaling inside the rack is good; the cache effect pushes some points
    # at or above ideal efficiency (the paper's super-linear observation).
    assert efficiency[2] > 0.85
    assert max(efficiency[n] for n in (8, 16, 32)) > 0.95

    # Crossing the rack boundary costs a large share of the efficiency.
    assert efficiency[64] < 0.7 * efficiency[32]
    # At the largest allocations communication dominates and efficiency is low.
    assert efficiency[256] < 0.3

    # Message volume grows with node count (smaller buffers to more peers).
    assert points[256].messages_per_iteration > points[8].messages_per_iteration
    # Past the rack boundary the throughput gain collapses: doubling the
    # nodes from 32 to 64 buys far less than the ideal 2x.
    assert points[64].throughput < 1.5 * points[32].throughput
    assert len(throughput) == len(NODE_COUNTS)
