"""Ablation: the hybrid update-policy threshold (DESIGN.md §5).

The paper fixes the "use the parallel Cholesky" threshold at 1000 ratings
based on Figure 2.  This ablation sweeps the threshold on a ChEMBL-like
workload and confirms (a) that using the hybrid policy beats forcing a
single kernel for every item, and (b) that the chosen threshold sits in the
flat optimum region — i.e. the paper's 1000 is a sensible default, and
extreme thresholds in either direction cost throughput.
"""

from __future__ import annotations

from repro.core.updates import HybridUpdatePolicy
from repro.multicore.sweep import multicore_thread_sweep
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.utils.tables import Table

THREADS = 16
THRESHOLDS = (64, 256, 1000, 4000, 10**9)


def _throughput_for_threshold(ratings, threshold: int) -> float:
    policy = HybridUpdatePolicy(parallel_threshold=threshold,
                                rank_one_threshold=min(32, threshold),
                                block_grain=512)
    sweep = multicore_thread_sweep(ratings, num_latent=32, thread_counts=(THREADS,),
                                   schedulers={"TBB": WorkStealingScheduler()},
                                   policy=policy)
    return sweep.throughput["TBB"][0]


def test_hybrid_threshold_ablation(benchmark, chembl_workload):
    def run_sweep():
        return {threshold: _throughput_for_threshold(chembl_workload, threshold)
                for threshold in THRESHOLDS}

    throughputs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table(["parallel threshold (ratings)", "throughput (items/s)"],
                  title=f"Hybrid-threshold ablation ({THREADS} simulated threads)")
    for threshold, value in throughputs.items():
        label = "never split (serial only)" if threshold >= 10**9 else threshold
        table.add_row(label, value)
    print()
    print(table.render())

    paper_threshold = throughputs[1000]
    never_split = throughputs[10**9]
    # Splitting heavy items at the paper's threshold beats never splitting.
    assert paper_threshold >= never_split
    # The paper's choice is within 10% of the best threshold in the sweep.
    assert paper_threshold > 0.9 * max(throughputs.values())
