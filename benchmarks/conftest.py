"""Shared fixtures for the benchmark harness.

Workloads are session-scoped so the figure benchmarks that share a dataset
(Figures 4 and 5, the ablations) generate it only once.  Sizes are chosen
so the full ``pytest benchmarks/ --benchmark-only`` run finishes in a few
minutes on one core; every driver accepts larger sizes for a
closer-to-paper-scale run (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.bench.fig4_strong_scaling import bluegene_like_config
from repro.datasets import make_chembl_like, make_scaling_workload


@pytest.fixture(scope="session")
def chembl_workload():
    """ChEMBL-like workload for the multicore experiments (Figure 3)."""
    return make_chembl_like(scale=50.0, seed=11).ratings


@pytest.fixture(scope="session")
def movielens_scaling_workload():
    """MovieLens-shaped structural workload for the scaling experiments.

    Full ml-20m user/movie counts with a reduced rating count so that the
    model sweep stays fast; the nnz-per-item ratio is about a quarter of
    the real dataset, which shifts where communication starts to dominate
    but preserves the rack-boundary behaviour.
    """
    return make_scaling_workload(n_users=138_493 // 2, n_movies=27_278 // 2,
                                 n_ratings=3_000_000, seed=13)


@pytest.fixture(scope="session")
def scaling_config():
    """BlueGene/Q-like machine model shared by Figures 4 and 5."""
    return bluegene_like_config(num_latent=64)
