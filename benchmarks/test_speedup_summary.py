"""Benchmark: the paper's end-to-end speed-up claim (conclusion).

"The achieved speed-up allowed us to speed up machine learning for drug
discovery on an industrial dataset from 15 days for the initial Julia-based
version to 30 minutes using the distributed version" — roughly a 700x
end-to-end improvement.  The modelled ladder below reproduces the order of
magnitude of that improvement (single core -> one multicore node -> the
distributed machine).
"""

from __future__ import annotations

from repro.bench.speedup_summary import run_speedup_summary


def test_end_to_end_speedup_ladder(benchmark):
    result = benchmark.pedantic(
        run_speedup_summary,
        kwargs=dict(chembl_scale=50.0, n_iterations=100, distributed_nodes=128,
                    num_latent=64),
        rounds=1, iterations=1)

    print()
    print(result.to_table().render())

    speedups = result.speedups()
    single_node = speedups["single node, multicore (TBB-like)"]
    distributed = speedups["distributed (128 nodes)"]

    # One tuned multicore node is already 1-2 orders of magnitude faster
    # than the initial single-core implementation.
    assert single_node > 30.0
    # The distributed machine adds another large factor on top; the paper's
    # overall 15 days -> 30 minutes is ~700x, so require the same order of
    # magnitude (hundreds) end to end.
    assert distributed > 200.0
    assert distributed > 2.0 * single_node
