"""Benchmark: Figure 2 — per-item update time versus rating count.

Regenerates the measured and modelled curves for the three update kernels
and checks the crossover structure that motivates the paper's 1000-rating
hybrid threshold.  The individual kernels are also micro-benchmarked with
pytest-benchmark so their absolute cost on this machine is recorded.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.fig2_update_methods import run_fig2
from repro.core.priors import GaussianPrior
from repro.core.updates import (
    sample_item_parallel_cholesky,
    sample_item_rank_one,
    sample_item_serial_cholesky,
)

NUM_LATENT = 32


def test_fig2_update_method_curves(benchmark):
    """The full Figure 2 sweep (measured + modelled series)."""
    result = benchmark.pedantic(
        run_fig2,
        kwargs=dict(degrees=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096),
                    num_latent=NUM_LATENT, repeats=1, max_rank_one_degree=1024),
        rounds=1, iterations=1)

    print()
    print(result.to_table("measured").render())
    print()
    print(result.to_table("modelled").render())

    # Paper shape, modelled (compiled-kernel) curves: the rank-one update is
    # the cheapest option for lightly-rated items, the serial Cholesky takes
    # over in the middle band, and the parallel Cholesky only wins for the
    # heavy items around the paper's 1000-rating threshold.
    assert result.modelled["rank-one update"][0] < result.modelled["serial Cholesky"][0]
    rank1_to_serial = result.crossover("modelled", "rank-one update", "serial Cholesky")
    serial_to_parallel = result.crossover("modelled", "serial Cholesky",
                                          "parallel Cholesky")
    assert rank1_to_serial is not None and rank1_to_serial <= 256
    assert serial_to_parallel is not None and 256 <= serial_to_parallel <= 4096

    # Measured (pure-Python) curves keep the same large-item behaviour: the
    # Gram-based kernels grow slowly while rank-one grows linearly.
    measured_serial = np.array(result.measured["serial Cholesky"])
    assert measured_serial[-1] < 50 * measured_serial[0]


@pytest.mark.parametrize("degree", [8, 128, 2048])
def test_kernel_serial_cholesky_microbench(benchmark, degree):
    rng = np.random.default_rng(0)
    neighbours = rng.normal(size=(degree, NUM_LATENT))
    ratings = rng.normal(size=degree)
    prior = GaussianPrior.standard(NUM_LATENT)
    noise = rng.standard_normal(NUM_LATENT)
    benchmark(sample_item_serial_cholesky, neighbours, ratings, prior, 2.0,
              noise=noise)


@pytest.mark.parametrize("degree", [8, 128])
def test_kernel_rank_one_microbench(benchmark, degree):
    rng = np.random.default_rng(0)
    neighbours = rng.normal(size=(degree, NUM_LATENT))
    ratings = rng.normal(size=degree)
    prior = GaussianPrior.standard(NUM_LATENT)
    noise = rng.standard_normal(NUM_LATENT)
    benchmark(sample_item_rank_one, neighbours, ratings, prior, 2.0, noise=noise)


@pytest.mark.parametrize("degree", [2048])
def test_kernel_parallel_cholesky_microbench(benchmark, degree):
    rng = np.random.default_rng(0)
    neighbours = rng.normal(size=(degree, NUM_LATENT))
    ratings = rng.normal(size=degree)
    prior = GaussianPrior.standard(NUM_LATENT)
    noise = rng.standard_normal(NUM_LATENT)
    benchmark(sample_item_parallel_cholesky, neighbours, ratings, prior, 2.0,
              noise=noise, n_blocks=4)
