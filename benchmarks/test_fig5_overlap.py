"""Benchmark: Figure 5 — time spent computing, communicating, and both.

Runs the same machine model as Figure 4 over the paper's 1–128-node range
and checks the breakdown's qualitative content: on one node everything is
compute; asynchronous communication overlaps a meaningful share of the
transfer time at small/medium node counts; at large node counts the
communication share dominates and the overlap no longer helps.
"""

from __future__ import annotations

from repro.bench.fig5_overlap import run_fig5

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128)


def test_fig5_compute_communicate_overlap(benchmark, movielens_scaling_workload,
                                          scaling_config):
    result = benchmark.pedantic(
        run_fig5,
        kwargs=dict(ratings=movielens_scaling_workload, node_counts=NODE_COUNTS,
                    config=scaling_config),
        rounds=1, iterations=1)

    print()
    print(result.to_table().render())

    fractions = result.fractions()
    compute = dict(zip(result.node_counts, fractions["compute"]))
    both = dict(zip(result.node_counts, fractions["both"]))
    communicate = dict(zip(result.node_counts, fractions["communicate"]))

    # Shares are well-formed everywhere.
    for i, nodes in enumerate(result.node_counts):
        total = (fractions["compute"][i] + fractions["both"][i]
                 + fractions["communicate"][i])
        assert abs(total - 1.0) < 1e-9

    # One node: pure compute.
    assert compute[1] > 0.999
    # Compute share falls monotonically as nodes are added.
    compute_series = [compute[n] for n in NODE_COUNTS]
    assert all(a >= b - 1e-9 for a, b in zip(compute_series, compute_series[1:]))
    # Overlap is visible in the mid range (asynchronous sends hide transfers).
    assert max(both[n] for n in (8, 16, 32, 64)) > 0.05
    # At the largest node count communication dominates the iteration.
    assert communicate[128] > 0.5
    assert communicate[128] > communicate[8]
