"""Benchmark: the paper's accuracy-parity claim (Section V-B).

"For all the experiments, all the versions of the parallel BPMF reach the
same level of prediction accuracy evaluated using the RMSE."  This target
runs the sequential, multicore and distributed samplers on one dataset with
one seed and verifies they agree — exactly (bitwise) where the random
streams are aligned, and within a small tolerance for the
sufficient-statistics hyperparameter path.
"""

from __future__ import annotations

from repro.bench.accuracy import run_accuracy_parity
from repro.core.priors import BPMFConfig


def test_accuracy_parity_across_implementations(benchmark):
    config = BPMFConfig(num_latent=6, burn_in=6, n_samples=14, alpha=4.0)
    result = benchmark.pedantic(
        run_accuracy_parity,
        kwargs=dict(config=config, n_ranks=4, seed=7),
        rounds=1, iterations=1)

    print()
    print(result.to_table().render())

    # The parallel execution paths that share the sequential random stream
    # reproduce it exactly.
    assert result.exact_match["sequential"]
    assert result.exact_match["multicore"]
    assert result.exact_match["distributed (gather)"]

    # The production (allreduce) hyperparameter path is statistically
    # equivalent: same accuracy to well within the Monte-Carlo noise.
    assert result.max_rmse_gap() < 0.05

    # And every implementation actually learned the low-rank signal.
    for name, value in result.final_rmse.items():
        assert value < 1.0, name
