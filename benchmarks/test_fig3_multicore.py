"""Benchmark: Figure 3 — multicore BPMF throughput versus thread count.

Runs the simulated-scheduler thread sweep on a ChEMBL-like workload for
the paper's three execution models and checks the figure's qualitative
content: all three scale with the thread count, the work-stealing (TBB)
version is the fastest at high thread counts, and the GraphLab-style
engine trails both hand-tuned versions by a wide margin.
"""

from __future__ import annotations

from repro.bench.fig3_multicore import run_fig3

THREAD_COUNTS = (1, 2, 4, 8, 16)


def test_fig3_multicore_throughput(benchmark, chembl_workload):
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(ratings=chembl_workload, num_latent=32,
                    thread_counts=THREAD_COUNTS),
        rounds=1, iterations=1)

    print()
    print(result.to_table().render())
    for name in ("TBB", "OpenMP", "GraphLab"):
        speedup = result.speedup(name)
        print(f"{name:9s} speed-up over 1 thread: "
              + ", ".join(f"{value:.2f}" for value in speedup))

    throughput = result.throughput
    # Everything scales with the number of threads.
    for name, series in throughput.items():
        assert series[-1] > 5.0 * series[0], f"{name} failed to scale"
    # TBB > OpenMP at high thread counts (work stealing + nested parallelism).
    assert throughput["TBB"][-1] > 1.1 * throughput["OpenMP"][-1]
    # Both hand-tuned versions beat the GraphLab-style engine everywhere.
    for tbb, openmp, graphlab in zip(throughput["TBB"], throughput["OpenMP"],
                                     throughput["GraphLab"]):
        assert min(tbb, openmp) > 2.0 * graphlab


def test_fig3_scheduler_gap_widens_with_threads(benchmark, chembl_workload):
    """The TBB/OpenMP gap is a load-imbalance effect, so it grows with cores."""
    result = benchmark.pedantic(
        run_fig3,
        kwargs=dict(ratings=chembl_workload, num_latent=32,
                    thread_counts=(2, 16)),
        rounds=1, iterations=1)
    gap_low = result.throughput["TBB"][0] / result.throughput["OpenMP"][0]
    gap_high = result.throughput["TBB"][1] / result.throughput["OpenMP"][1]
    print(f"\nTBB/OpenMP throughput ratio: {gap_low:.3f} at 2 threads, "
          f"{gap_high:.3f} at 16 threads")
    assert gap_high > gap_low
