"""Ablation: the per-node cache model behind the super-linear scaling.

Figure 4's super-linear region exists because strong scaling shrinks every
node's working set until it fits in cache, making the per-item compute
cheaper than it was on one node.  This ablation runs the same scaling sweep
with the cache speed-up disabled and shows that (a) the super-linear
efficiency disappears while (b) the rack-boundary degradation — a purely
network-topology effect — remains.  It also checks the rack-size knob: with
larger racks the degradation point moves accordingly.
"""

from __future__ import annotations

from repro.distributed.scaling import ScalingConfig, strong_scaling_study
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.utils.tables import Table

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def _config(cache_speedup: float, rack_size: int = 32) -> ScalingConfig:
    return ScalingConfig(
        num_latent=64,
        buffer_capacity=256,
        cluster=ClusterSpec(cores_per_node=16, rack_size=rack_size,
                            cache_bytes=32 * 1024 * 1024,
                            cache_speedup=cache_speedup),
        network=NetworkModel(intra_bandwidth=1.8e9, inter_bandwidth=0.7e9,
                             uplink_bandwidth=4.0e9, inter_latency=1.2e-5),
    )


def test_cache_model_ablation(benchmark, movielens_scaling_workload):
    def run_ablation():
        with_cache = strong_scaling_study(movielens_scaling_workload,
                                          node_counts=NODE_COUNTS,
                                          config=_config(cache_speedup=1.35))
        without_cache = strong_scaling_study(movielens_scaling_workload,
                                             node_counts=NODE_COUNTS,
                                             config=_config(cache_speedup=1.0))
        big_racks = strong_scaling_study(movielens_scaling_workload,
                                         node_counts=(32, 64),
                                         config=_config(cache_speedup=1.35,
                                                        rack_size=64))
        return with_cache, without_cache, big_racks

    with_cache, without_cache, big_racks = benchmark.pedantic(run_ablation,
                                                              rounds=1,
                                                              iterations=1)

    table = Table(["nodes", "efficiency with cache model (%)",
                   "efficiency without cache model (%)"],
                  title="Cache-model ablation (Figure 4 super-linearity)")
    for a, b in zip(with_cache.points, without_cache.points):
        table.add_row(a.n_nodes, 100 * a.parallel_efficiency,
                      100 * b.parallel_efficiency)
    print()
    print(table.render())

    eff_with = {p.n_nodes: p.parallel_efficiency for p in with_cache.points}
    eff_without = {p.n_nodes: p.parallel_efficiency for p in without_cache.points}

    # Super-linear efficiency appears only with the cache model...
    assert max(eff_with[n] for n in (8, 16, 32)) > 1.0
    assert all(eff_without[n] <= 1.02 for n in NODE_COUNTS)
    # ...while the rack-boundary collapse is present in both variants.
    assert eff_with[64] < 0.7 * eff_with[32]
    assert eff_without[64] < 0.7 * eff_without[32]

    # With 64-node racks the 64-node point stays inside one rack and keeps
    # its efficiency, confirming the degradation is the rack boundary.
    eff_big = {p.n_nodes: p.parallel_efficiency for p in big_racks.points}
    relative = eff_big[64] / eff_big[32]
    assert relative > 0.8
    print(f"with 64-node racks, efficiency(64)/efficiency(32) = {relative:.2f} "
          "(no rack boundary crossed)")
