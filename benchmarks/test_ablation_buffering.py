"""Ablation: send-buffer aggregation versus per-item messages (DESIGN.md §5).

Section IV-C of the paper argues that sending every updated item in its own
message is too expensive ("the overhead of calling these routines is too
much") and aggregates items into buffers.  This ablation quantifies the
claim twice:

* functionally — running the distributed sampler with ``buffer_capacity=1``
  versus the default and counting the messages actually posted;
* in the performance model — sweeping the buffer capacity in the
  strong-scaling model and comparing modelled throughput.
"""

from __future__ import annotations

from repro.core.priors import BPMFConfig
from repro.datasets import make_low_rank_dataset
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.distributed.scaling import ScalingConfig, strong_scaling_study
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.utils.tables import Table

CAPACITIES = (1, 8, 64, 512)
NODES = 32


def test_buffer_aggregation_ablation(benchmark, movielens_scaling_workload):
    def run_ablation():
        # -- functional message counts on a small dataset -------------------
        data = make_low_rank_dataset(n_users=120, n_movies=80, rank=4,
                                     density=0.15, seed=5)
        config = BPMFConfig(num_latent=4, burn_in=2, n_samples=3)
        message_counts = {}
        for capacity in (1, 64):
            _, info = DistributedGibbsSampler(
                config, DistributedOptions(n_ranks=4, buffer_capacity=capacity,
                                           hyper_mode="stats")
            ).run(data.split.train, data.split, seed=1)
            message_counts[capacity] = info.buffer_stats.n_messages

        # -- modelled throughput at scale -----------------------------------
        throughput = {}
        for capacity in CAPACITIES:
            scaling = strong_scaling_study(
                movielens_scaling_workload, node_counts=(NODES,),
                config=ScalingConfig(
                    num_latent=64, buffer_capacity=capacity,
                    cluster=ClusterSpec(rack_size=32),
                    network=NetworkModel(per_message_overhead=8.0e-6,
                                         intra_bandwidth=1.8e9,
                                         inter_bandwidth=0.7e9)))
            throughput[capacity] = scaling.point(NODES).throughput
        return message_counts, throughput

    message_counts, throughput = benchmark.pedantic(run_ablation, rounds=1,
                                                    iterations=1)

    table = Table(["buffer capacity (items)", f"modelled items/s on {NODES} nodes"],
                  title="Send-buffer aggregation ablation")
    for capacity in CAPACITIES:
        table.add_row(capacity, throughput[capacity])
    print()
    print(table.render())
    print(f"functional run: {message_counts[1]} messages unbuffered vs "
          f"{message_counts[64]} messages with 64-item buffers")

    # Buffering reduces the number of messages by a large factor...
    assert message_counts[1] > 5 * message_counts[64]
    # ...and the modelled throughput benefits from amortising the overhead.
    assert throughput[64] > throughput[1]
    assert throughput[512] >= 0.95 * throughput[64]
