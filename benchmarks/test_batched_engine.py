"""Ablation: batched update engine vs the per-item reference loop.

Quantifies the tentpole claim behind the engine refactor — grouping item
updates into degree buckets and executing them with stacked BLAS/LAPACK
must beat the per-item Python loop by a wide margin (the acceptance floor
is 3x at K = 32 on the synthetic workload; in practice the gap is one to
two orders of magnitude, because the loop pays interpreter and dispatch
overhead per item while the engine pays it per bucket).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bench.fig2_update_methods import run_fig2_batched
from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.utils.timing import time_call

NUM_LATENT = 32

AVAILABLE_CORES = os.cpu_count() or 1


@pytest.fixture(scope="module")
def workload():
    """Synthetic low-rank workload sized so the reference loop is measurable."""
    return make_low_rank_dataset(SyntheticConfig(
        n_users=400, n_movies=300, rank=5, density=0.05, noise_std=0.3,
        test_fraction=0.2, seed=17))


def _sweep_seconds(engine: str, data, repeats: int = 2,
                   n_workers: int | None = None) -> float:
    """Best-of-N wall-clock seconds for one full Gibbs sweep."""
    config = BPMFConfig(num_latent=NUM_LATENT, burn_in=0, n_samples=1,
                        alpha=4.0)

    def one_run():
        sampler = GibbsSampler(config, SamplerOptions(
            engine=engine, n_workers=n_workers))
        return sampler.run(data.split.train, data.split, seed=5)

    seconds, _ = time_call(one_run, repeats=repeats)
    return seconds


def test_batched_engine_speedup_on_synthetic_workload(workload):
    """Acceptance criterion: >= 3x over the per-item loop at K = 32."""
    reference = _sweep_seconds("reference", workload)
    batched = _sweep_seconds("batched", workload)
    speedup = reference / batched
    print(f"\nfull-sweep K={NUM_LATENT}: reference={reference:.3f}s "
          f"batched={batched:.3f}s speedup={speedup:.1f}x")
    assert speedup >= 3.0


def test_batched_engine_same_chain_on_benchmark_workload(workload):
    """The speedup is not bought with a different chain."""
    config = BPMFConfig(num_latent=8, burn_in=0, n_samples=1, alpha=4.0)
    ref = GibbsSampler(config, SamplerOptions(engine="reference")).run(
        workload.split.train, workload.split, seed=5)
    bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
        workload.split.train, workload.split, seed=5)
    np.testing.assert_allclose(bat.state.user_factors, ref.state.user_factors,
                               rtol=1e-6, atol=1e-8)


def _warm_sweep_seconds(engine: str, data, n_workers: int | None = None,
                        sweeps: int = 3, repeats: int = 3) -> float:
    """Per-sweep seconds with a persistent engine and warm plans/pool.

    Delegates to the same measurement methodology `python -m repro.bench
    engines` records to BENCH_*.json (warm-up sweep outside the timing,
    best-of-repeats), so the floor asserted here is the quantity the
    recorded ladder reports.
    """
    from repro.bench.engines import time_engine_case

    config = BPMFConfig(num_latent=NUM_LATENT, burn_in=0, n_samples=1,
                        alpha=4.0)
    return time_engine_case(engine, n_workers, "float64", data.split.train,
                            config, sweeps, repeats)


@pytest.mark.skipif(
    AVAILABLE_CORES < 4,
    reason=f"shared-engine speedup floor needs >= 4 cores, "
           f"have {AVAILABLE_CORES} (the engine cannot beat physics; "
           "BENCH_pr3.json records the honest single-core overhead)")
def test_shared_engine_speedup_on_synthetic_workload(workload):
    """Acceptance criterion: shared@4 workers >= 1.8x over batched@1.

    Perf assertions on shared CI runners are noise-prone, so a miss is
    re-measured once before failing: a genuine regression fails both
    rounds, a scheduling hiccup does not.
    """
    speedup = 0.0
    for _attempt in range(2):
        batched = _warm_sweep_seconds("batched", workload)
        shared = _warm_sweep_seconds("shared", workload, n_workers=4)
        speedup = batched / shared
        print(f"\nfull-sweep K={NUM_LATENT}: batched={batched:.4f}s "
              f"shared@4={shared:.4f}s speedup={speedup:.2f}x")
        if speedup >= 1.8:
            break
    assert speedup >= 1.8


def test_shared_engine_same_chain_on_benchmark_workload(workload):
    """The process backend samples the identical chain (bit for bit)."""
    config = BPMFConfig(num_latent=8, burn_in=0, n_samples=1, alpha=4.0)
    bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
        workload.split.train, workload.split, seed=5)
    shm = GibbsSampler(config, SamplerOptions(engine="shared",
                                              n_workers=2)).run(
        workload.split.train, workload.split, seed=5)
    np.testing.assert_array_equal(shm.state.user_factors,
                                  bat.state.user_factors)
    np.testing.assert_array_equal(shm.state.movie_factors,
                                  bat.state.movie_factors)


def test_fig2_batched_ablation_table(benchmark):
    """The per-degree ablation behind the Figure 2 batched variant."""
    result = benchmark.pedantic(
        run_fig2_batched,
        kwargs=dict(degrees=(1, 4, 16, 64, 256), num_latent=NUM_LATENT,
                    batch_size=128, repeats=3),
        rounds=1, iterations=1)
    print()
    print(result.to_table().render())
    # The batched engine wins at every degree — decisively for the light
    # items where the per-item loop is pure interpreter overhead, by a
    # smaller (noise-prone) margin in the serial-Cholesky band where one
    # BLAS call already dominates the loop body.
    assert result.min_speedup >= 1.5
    assert max(result.speedups) >= 10.0


@pytest.mark.parametrize("engine", ["reference", "batched"])
def test_sweep_microbench(benchmark, workload, engine):
    """Record both engines' absolute sweep cost on this machine."""
    config = BPMFConfig(num_latent=NUM_LATENT, burn_in=0, n_samples=1,
                        alpha=4.0)
    benchmark.pedantic(
        lambda: GibbsSampler(config, SamplerOptions(engine=engine)).run(
            workload.split.train, workload.split, seed=5),
        rounds=1, iterations=1)
