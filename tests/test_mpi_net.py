"""Socket-backed MPI world: verbs, SPMD training parity, chaos, obs.

The acceptance bar for ``repro.mpi.net`` is *bit-parity*: a socket-world
run of the distributed sampler must reproduce the orchestrated
``SimCommWorld`` chain exactly — factors, RMSE trajectory, predictions,
ties included.  Everything here runs over real localhost TCP links; the
final test crosses real process boundaries via the launcher.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.core.priors import BPMFConfig
from repro.distributed.sampler import (
    DistributedGibbsSampler,
    DistributedOptions,
)
from repro.distributed.spmd import run_local_socket_world
from repro.mpi.net import (
    ANY_SOURCE,
    ANY_TAG,
    MpiTransportError,
    free_port,
    start_local_world,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serving.chaos.plan import FaultEvent, FaultInjector, FaultPlan
from repro.utils.validation import ValidationError

REPO_ROOT = Path(__file__).resolve().parent.parent


def run_on_ranks(worlds, body):
    """Run ``body(rank, comm)`` on one thread per rank; re-raise failures."""
    n_ranks = len(worlds)
    results = [None] * n_ranks
    errors = [None] * n_ranks

    def drive(rank):
        try:
            results[rank] = body(rank, worlds[rank].comm())
        except BaseException as error:
            errors[rank] = error
            worlds[rank].abort(f"rank {rank} failed: {error}")

    threads = [threading.Thread(target=drive, args=(rank,), daemon=True)
               for rank in range(n_ranks)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    failures = [error for error in errors if error is not None]
    if failures:
        raise failures[0]
    return results


@pytest.fixture
def world_pair():
    worlds = start_local_world(2, op_timeout=30.0)
    yield worlds
    for world in worlds:
        world.close()


@pytest.fixture
def world_quad():
    worlds = start_local_world(4, op_timeout=60.0)
    yield worlds
    for world in worlds:
        world.close()


# ---------------------------------------------------------------------------
# verb surface
# ---------------------------------------------------------------------------

class TestVerbs:
    def test_tagged_send_recv_roundtrip(self, world_pair):
        def body(rank, comm):
            if rank == 0:
                comm.isend({"x": np.arange(5, dtype=np.float64)}, 1, tag=3)
                return None
            message = comm.recv(source=0, tag=3)
            return message["x"]

        results = run_on_ranks(world_pair, body)
        np.testing.assert_array_equal(results[1], np.arange(5.0))

    def test_binary_arrays_cross_bit_exact(self, world_pair):
        payload = np.array([0.1, 1 / 3, np.pi, 1e-300, -0.0])

        def body(rank, comm):
            if rank == 0:
                comm.isend((np.array([4, 0, 2], dtype=np.int64), payload),
                           1, tag=9)
                return None
            ids, rows = comm.recv(tag=9)
            return ids, rows

        results = run_on_ranks(world_pair, body)
        ids, rows = results[1]
        assert np.asarray(ids).tolist() == [4, 0, 2]
        # Bitwise, not approximate: the codec ships raw float64 blocks.
        assert np.asarray(rows).tobytes() == payload.tobytes()

    def test_any_source_any_tag_after_barrier_is_rank_ordered(
            self, world_quad):
        def body(rank, comm):
            if rank != 3:
                comm.isend(f"from-{rank}", 3, tag=10 + rank)
            comm.barrier()
            if rank == 3:
                got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                       for _ in range(3)]
                return got
            return None

        results = run_on_ranks(world_quad, body)
        # Post-barrier matching is deterministic: (epoch, source, seq).
        assert results[3] == ["from-0", "from-1", "from-2"]

    def test_iprobe_and_drain_filter_by_tag(self, world_pair):
        def body(rank, comm):
            if rank == 0:
                comm.isend("a", 1, tag=1)
                comm.isend("b", 1, tag=2)
                comm.isend("c", 1, tag=1)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.iprobe(tag=2)
            assert comm.iprobe(source=0, tag=1)
            assert not comm.iprobe(tag=77)
            ones = comm.drain(tag=1)
            assert not comm.iprobe(tag=1)
            rest = comm.drain()
            return ones, rest

        results = run_on_ranks(world_pair, body)
        assert results[1] == (["a", "c"], ["b"])

    def test_irecv_test_then_wait(self, world_pair):
        def body(rank, comm):
            if rank == 0:
                request = comm.irecv(source=1, tag=5)
                comm.barrier()  # sender posted before its barrier
                assert request.test()
                return request.wait()
            comm.isend({"v": 7}, 0, tag=5)
            comm.barrier()
            return None

        results = run_on_ranks(world_pair, body)
        assert results[0] == {"v": 7}

    def test_allreduce_matches_simcomm_association(self, world_quad):
        # Same contributions through SimComm's rank-order sum.
        contributions = [np.array([0.1, 1 / 3]) * (rank + 1)
                        for rank in range(4)]
        expected = sum(contributions[1:], start=contributions[0].copy())

        def body(rank, comm):
            return comm.allreduce(contributions[rank].copy(), key="par")

        results = run_on_ranks(world_quad, body)
        for reduced in results:
            assert np.asarray(reduced).tobytes() == expected.tobytes()

    def test_fetch_allreduce_is_orchestration_only(self, world_pair):
        with pytest.raises(ValidationError):
            world_pair[0].comm().fetch_allreduce()

    def test_bcast_from_nonzero_root(self, world_quad):
        def body(rank, comm):
            value = {"w": [1, 2, 3]} if rank == 2 else None
            return comm.bcast(value, root=2)

        results = run_on_ranks(world_quad, body)
        assert all(value == {"w": [1, 2, 3]} for value in results)

    def test_self_send(self, world_pair):
        def body(rank, comm):
            comm.isend(f"self-{rank}", rank, tag=1)
            return comm.recv(source=rank, tag=1)

        results = run_on_ranks(world_pair, body)
        assert results == ["self-0", "self-1"]

    def test_dead_peer_fails_fast_not_hangs(self):
        worlds = start_local_world(2, op_timeout=30.0)
        try:
            worlds[1].abort("simulated crash")  # dies without a goodbye

            def blocked():
                return worlds[0].comm().recv(source=1, tag=1, timeout=20.0)

            with pytest.raises(MpiTransportError):
                blocked()
        finally:
            for world in worlds:
                world.close()

    def test_pending_messages_counts_undelivered(self, world_pair):
        def body(rank, comm):
            if rank == 0:
                comm.isend("orphan", 1, tag=9)
            comm.barrier()
            return comm.world.pending_messages()

        results = run_on_ranks(world_pair, body)
        assert results == [0, 1]


# ---------------------------------------------------------------------------
# SPMD training parity (the acceptance criterion)
# ---------------------------------------------------------------------------

def _config():
    return BPMFConfig(num_latent=3, burn_in=2, n_samples=3, alpha=4.0)


def _run_pair(tiny_dataset, n_ranks, hyper_mode, injectors=None):
    """(orchestrated result, socket-world rank-0 result) for one setup."""
    opts = dict(n_ranks=n_ranks, hyper_mode=hyper_mode, buffer_capacity=8)
    reference, ref_info = DistributedGibbsSampler(
        _config(), DistributedOptions(**opts)).run(
        tiny_dataset.split.train, tiny_dataset.split, seed=11)
    outcomes = run_local_socket_world(
        lambda: DistributedGibbsSampler(_config(),
                                        DistributedOptions(**opts)),
        n_ranks, tiny_dataset.split.train, tiny_dataset.split, seed=11,
        injectors=injectors)
    return reference, ref_info, outcomes


class TestTrainingParity:
    @pytest.mark.parametrize("hyper_mode", ["stats", "gather"])
    @pytest.mark.parametrize("n_ranks", [2, 4])
    def test_socket_chain_bit_identical(self, tiny_dataset, n_ranks,
                                        hyper_mode):
        reference, _, outcomes = _run_pair(tiny_dataset, n_ranks, hyper_mode)
        result, info = outcomes[0]
        assert result is not None
        # Bitwise equality — exact ties included, not allclose.
        assert np.array_equal(result.state.user_factors,
                              reference.state.user_factors)
        assert np.array_equal(result.state.movie_factors,
                              reference.state.movie_factors)
        assert result.rmse_burn_in == reference.rmse_burn_in
        assert result.rmse_per_sample == reference.rmse_per_sample
        assert result.rmse_running_mean == reference.rmse_running_mean
        assert np.array_equal(result.predictions, reference.predictions)
        # Non-root ranks hold only their blocks.
        assert all(outcomes[rank][0] is None for rank in range(1, n_ranks))
        # Traffic flowed over real sockets.
        assert info.n_messages > 0 and info.bytes_sent > 0

    def test_four_rank_subprocess_chain_bit_identical(self, tmp_path):
        """The full acceptance criterion: 4 real OS processes, one rank
        each, rendezvous + mesh over TCP — bit-identical to SimCommWorld."""
        sizes = dict(users=40, movies=30, num_latent=3, burn_in=2,
                     n_samples=2, seed=11, data_seed=321)
        port = free_port()
        chain = tmp_path / "chain.npz"
        processes = []
        for rank in range(4):
            command = [sys.executable, "-m", "repro.mpi.net",
                       "--rank", str(rank), "--world", "4",
                       "--rendezvous", f"127.0.0.1:{port}",
                       "--program", "train", "--hyper-mode", "gather",
                       "--users", str(sizes["users"]),
                       "--movies", str(sizes["movies"]),
                       "--num-latent", str(sizes["num_latent"]),
                       "--burn-in", str(sizes["burn_in"]),
                       "--n-samples", str(sizes["n_samples"]),
                       "--seed", str(sizes["seed"]),
                       "--data-seed", str(sizes["data_seed"])]
            if rank == 0:
                command += ["--out", str(chain)]
            processes.append(subprocess.Popen(
                command, cwd=REPO_ROOT,
                env={**__import__("os").environ,
                     "PYTHONPATH": str(REPO_ROOT / "src")}))
        codes = [process.wait(timeout=240) for process in processes]
        assert codes == [0, 0, 0, 0]

        from repro.datasets.synthetic import (
            SyntheticConfig,
            make_low_rank_dataset,
        )
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=sizes["users"], n_movies=sizes["movies"], rank=4,
            density=0.25, noise_std=0.3, test_fraction=0.2,
            seed=sizes["data_seed"]))
        config = BPMFConfig(num_latent=sizes["num_latent"],
                            burn_in=sizes["burn_in"],
                            n_samples=sizes["n_samples"], alpha=4.0)
        reference, _ = DistributedGibbsSampler(
            config, DistributedOptions(n_ranks=4, hyper_mode="gather",
                                       buffer_capacity=16)).run(
            data.split.train, data.split, seed=sizes["seed"])
        with np.load(chain) as saved:
            assert np.array_equal(saved["user_factors"],
                                  reference.state.user_factors)
            assert np.array_equal(saved["movie_factors"],
                                  reference.state.movie_factors)
            assert np.array_equal(saved["rmse_running_mean"],
                                  np.asarray(reference.rmse_running_mean))
            assert np.array_equal(saved["predictions"],
                                  reference.predictions)

    def test_spmd_rejects_checkpoint_and_resume(self, tiny_dataset):
        from repro.serving.checkpoint import CheckpointConfig

        worlds = start_local_world(1)
        try:
            sampler = DistributedGibbsSampler(
                _config(), DistributedOptions(
                    n_ranks=1,
                    checkpoint=CheckpointConfig(path="/tmp/x.npz")))
            with pytest.raises(ValidationError):
                sampler.run(tiny_dataset.split.train, tiny_dataset.split,
                            comm_world=worlds[0])
        finally:
            for world in worlds:
                world.close()

    def test_world_rank_count_must_match_options(self, tiny_dataset):
        worlds = start_local_world(2)
        try:
            sampler = DistributedGibbsSampler(
                _config(), DistributedOptions(n_ranks=4))
            with pytest.raises(ValidationError):
                sampler.run(tiny_dataset.split.train, tiny_dataset.split,
                            comm_world=worlds[0])
        finally:
            for world in worlds:
                world.close()

    def test_orchestrated_run_accepts_external_simworld(self, tiny_dataset):
        from repro.mpi.simmpi import SimCommWorld

        opts = DistributedOptions(n_ranks=2, hyper_mode="gather")
        world = SimCommWorld(2)
        result, _ = DistributedGibbsSampler(_config(), opts).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=11,
            comm_world=world)
        reference, _ = DistributedGibbsSampler(_config(), opts).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=11)
        assert np.array_equal(result.state.user_factors,
                              reference.state.user_factors)
        assert len(world.message_log) > 0


# ---------------------------------------------------------------------------
# chaos integration
# ---------------------------------------------------------------------------

class TestChaos:
    def test_benign_faults_keep_the_chain_bit_identical(self, tiny_dataset):
        """Seeded delays/slow-reads perturb timing, never bits."""
        events = []
        for step in range(2, 40, 3):
            events.append(FaultEvent(site="net.recv", step=step,
                                     action="slow", arg=0.0))
            events.append(FaultEvent(site="net.send", step=step,
                                     action="delay", arg=0.002))
        injectors = [FaultInjector(FaultPlan(seed=1, events=list(events)))
                     for _ in range(2)]
        reference, _, outcomes = _run_pair(tiny_dataset, 2, "gather",
                                           injectors=injectors)
        result, _ = outcomes[0]
        assert np.array_equal(result.state.user_factors,
                              reference.state.user_factors)
        assert result.rmse_running_mean == reference.rmse_running_mean
        assert any(injector.log for injector in injectors)

    def test_injected_reset_fails_fast(self, tiny_dataset):
        """A reset mid-run kills the world with MpiTransportError —
        bounded time, no hang."""
        lethal = FaultPlan(seed=2, events=[
            FaultEvent(site="net.recv", step=8, action="reset")])
        injectors = [None, FaultInjector(lethal)]
        opts = dict(n_ranks=2, hyper_mode="gather", buffer_capacity=8)
        with pytest.raises(MpiTransportError):
            run_local_socket_world(
                lambda: DistributedGibbsSampler(
                    _config(), DistributedOptions(**opts)),
                2, tiny_dataset.split.train, tiny_dataset.split, seed=11,
                injectors=injectors, op_timeout=30.0)

    def test_connect_fault_site_is_checked(self):
        plan = FaultPlan(seed=3, events=[
            FaultEvent(site="net.connect", step=1, action="fail")])
        injectors = [None, FaultInjector(plan)]
        with pytest.raises(ConnectionError):
            start_local_world(2, injectors=injectors)


# ---------------------------------------------------------------------------
# obs: metrics provider + spans
# ---------------------------------------------------------------------------

class TestObs:
    def test_transport_counters_registered_under_mpi(self, world_pair):
        registry = MetricsRegistry()
        for world in world_pair:
            world.register_metrics(registry)

        def body(rank, comm):
            comm.isend(np.zeros(16), 1 - rank, tag=1)
            comm.barrier()
            comm.recv(tag=1)
            comm.allreduce(np.ones(2), key="m")
            return None

        run_on_ranks(world_pair, body)
        snapshot = registry.snapshot()
        assert snapshot["mpi.allreduce{rank=0}"] == 1
        assert snapshot["mpi.barrier{rank=1}"] == 1
        assert snapshot["mpi.sent.1.messages{rank=0}"] > 0
        assert snapshot["mpi.received.0.bytes{rank=1}"] > 0
        assert snapshot["mpi.pending{rank=0}"] == 0

    def test_sweep_and_exchange_spans_emitted(self, tiny_dataset, tmp_path):
        tracer = Tracer(sink_dir=str(tmp_path), sink_name="mpi.jsonl")
        opts = dict(n_ranks=1, hyper_mode="stats")
        worlds = start_local_world(1)
        try:
            sampler = DistributedGibbsSampler(_config(),
                                              DistributedOptions(**opts))
            with tracer.start("mpi.rank", attrs={"rank": 0}):
                sampler.run(tiny_dataset.split.train, tiny_dataset.split,
                            seed=11, comm_world=worlds[0])
        finally:
            for world in worlds:
                world.close()
        spans = [json.loads(line)
                 for line in (tmp_path / "mpi.jsonl").read_text().splitlines()]
        names = {span["name"] for span in spans}
        assert "mpi.sweep" in names and "mpi.exchange" in names
        sweeps = [span for span in spans if span["name"] == "mpi.sweep"]
        total = _config().total_iterations
        assert len(sweeps) == total
        # Exchanges are children of their sweep.
        sweep_ids = {span["span_id"] for span in sweeps}
        exchanges = [span for span in spans if span["name"] == "mpi.exchange"]
        assert exchanges and all(span["parent_id"] in sweep_ids
                                 for span in exchanges)
