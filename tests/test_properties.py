"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.batch_engine import BatchedUpdateEngine, ReferenceUpdateEngine
from repro.core.priors import GaussianPrior, NormalWishartPrior
from repro.core.updates import (
    cholesky_rank_one_update,
    conditional_distribution,
    sample_item_parallel_cholesky,
    sample_item_rank_one,
    sample_item_serial_cholesky,
)
from repro.core.wishart import normal_wishart_posterior, sample_wishart
from repro.mpi.buffers import SendBuffer
from repro.parallel.simulator import SimTask
from repro.parallel.static_scheduler import StaticScheduler
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.sparse.reorder import balanced_block_order
from repro.sparse.split import train_test_split

# Keep hypothesis fast and deterministic for CI-style runs.
COMMON_SETTINGS = settings(max_examples=30, deadline=None)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

@st.composite
def sparse_triplets(draw, max_rows=12, max_cols=10, max_nnz=40):
    """Random COO triplets (possibly with duplicates) plus dense shape."""
    n_rows = draw(st.integers(1, max_rows))
    n_cols = draw(st.integers(1, max_cols))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    values = draw(st.lists(st.floats(-10, 10, allow_nan=False), min_size=nnz,
                           max_size=nnz))
    return n_rows, n_cols, rows, cols, values


@st.composite
def spd_matrix_and_vector(draw, max_dim=6):
    """A random symmetric positive-definite matrix and a vector."""
    dim = draw(st.integers(1, max_dim))
    entries = draw(hnp.arrays(np.float64, (dim, dim),
                              elements=st.floats(-2, 2, allow_nan=False)))
    spd = entries @ entries.T + (dim + 1.0) * np.eye(dim)
    vector = draw(hnp.arrays(np.float64, (dim,),
                             elements=st.floats(-3, 3, allow_nan=False)))
    return spd, vector


# ---------------------------------------------------------------------------
# sparse substrate
# ---------------------------------------------------------------------------

class TestSparseProperties:
    @COMMON_SETTINGS
    @given(sparse_triplets())
    def test_csr_csc_views_always_agree(self, triplets):
        n_rows, n_cols, rows, cols, values = triplets
        coo = CooMatrix.from_arrays(n_rows, n_cols, np.array(rows, dtype=np.int64),
                                    np.array(cols, dtype=np.int64),
                                    np.array(values))
        matrix = RatingMatrix.from_coo(coo)
        # nnz consistent across views; degree sums equal.
        assert matrix.by_user.nnz == matrix.by_movie.nnz == matrix.nnz
        assert matrix.user_degrees().sum() == matrix.movie_degrees().sum()
        # Dense reconstruction agrees with de-duplicated COO.
        np.testing.assert_allclose(np.nan_to_num(matrix.to_dense()),
                                   np.nan_to_num(coo.deduplicate().to_dense()))

    @COMMON_SETTINGS
    @given(sparse_triplets())
    def test_transpose_is_involution(self, triplets):
        n_rows, n_cols, rows, cols, values = triplets
        matrix = RatingMatrix.from_coo(CooMatrix.from_arrays(
            n_rows, n_cols, np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64), np.array(values)))
        twice = matrix.transpose().transpose()
        np.testing.assert_allclose(np.nan_to_num(twice.to_dense()),
                                   np.nan_to_num(matrix.to_dense()))

    @COMMON_SETTINGS
    @given(sparse_triplets(), st.floats(0.0, 0.9), st.integers(0, 1000))
    def test_split_partitions_without_loss(self, triplets, fraction, seed):
        n_rows, n_cols, rows, cols, values = triplets
        matrix = RatingMatrix.from_coo(CooMatrix.from_arrays(
            n_rows, n_cols, np.array(rows, dtype=np.int64),
            np.array(cols, dtype=np.int64), np.array(values)))
        split = train_test_split(matrix, test_fraction=fraction, seed=seed)
        assert split.train.nnz + split.n_test == matrix.nnz
        # Test cells never appear in the training matrix.
        train_dense = split.train.to_dense()
        for u, m in zip(split.test_users, split.test_movies):
            assert np.isnan(train_dense[u, m])

    @COMMON_SETTINGS
    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=60),
           st.integers(1, 8))
    def test_balanced_blocks_are_contiguous_and_complete(self, costs, n_blocks):
        blocks = balanced_block_order(np.array(costs), n_blocks)
        assert blocks.shape == (len(costs),)
        assert (np.diff(blocks) >= 0).all()
        assert blocks.min() == 0
        assert blocks.max() <= n_blocks - 1


# ---------------------------------------------------------------------------
# numerics
# ---------------------------------------------------------------------------

class TestNumericProperties:
    @COMMON_SETTINGS
    @given(spd_matrix_and_vector())
    def test_cholesky_rank_one_update_correct(self, case):
        spd, vector = case
        updated = cholesky_rank_one_update(np.linalg.cholesky(spd), vector)
        np.testing.assert_allclose(updated @ updated.T,
                                   spd + np.outer(vector, vector),
                                   rtol=1e-8, atol=1e-8)
        # The factor stays lower triangular with a positive diagonal.
        assert np.allclose(updated, np.tril(updated))
        assert (np.diag(updated) > 0).all()

    @COMMON_SETTINGS
    @given(st.integers(1, 5), st.integers(0, 25), st.integers(0, 2**31 - 1))
    def test_update_kernels_always_agree(self, k, n_ratings, seed):
        rng = np.random.default_rng(seed)
        neighbours = rng.normal(size=(n_ratings, k))
        ratings = rng.normal(size=n_ratings)
        prior = GaussianPrior(mean=rng.normal(size=k),
                              precision=np.eye(k) * rng.uniform(0.5, 3.0))
        noise = rng.standard_normal(k)
        serial = sample_item_serial_cholesky(neighbours, ratings, prior, 2.0,
                                             noise=noise)
        rank_one = sample_item_rank_one(neighbours, ratings, prior, 2.0, noise=noise)
        parallel = sample_item_parallel_cholesky(neighbours, ratings, prior, 2.0,
                                                 noise=noise, n_blocks=3)
        np.testing.assert_allclose(rank_one, serial, rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(parallel, serial, rtol=1e-6, atol=1e-6)
        assert np.isfinite(serial).all()

    @COMMON_SETTINGS
    @given(st.integers(1, 5), st.integers(1, 40), st.integers(0, 2**31 - 1))
    def test_conditional_precision_is_positive_definite(self, k, n_ratings, seed):
        rng = np.random.default_rng(seed)
        neighbours = rng.normal(size=(n_ratings, k))
        ratings = rng.normal(size=n_ratings)
        prior = GaussianPrior.standard(k)
        mean, chol = conditional_distribution(neighbours, ratings, prior, 2.0)
        assert np.isfinite(mean).all()
        assert (np.diag(chol) > 0).all()

    @COMMON_SETTINGS
    @given(st.integers(1, 6), st.integers(0, 40), st.integers(0, 2**31 - 1),
           st.floats(0.1, 10.0))
    def test_conditional_precision_spd_and_symmetric(self, k, n_ratings, seed,
                                                     alpha):
        """The posterior precision ``L L^T`` is symmetric positive-definite.

        ``conditional_distribution`` returns the Cholesky factor; the
        reconstructed precision must be exactly the prior-plus-Gram matrix,
        symmetric, and with strictly positive eigenvalues — for any rating
        configuration, including items with zero ratings.
        """
        rng = np.random.default_rng(seed)
        neighbours = rng.normal(size=(n_ratings, k))
        ratings = rng.normal(size=n_ratings)
        prior = GaussianPrior(mean=rng.normal(size=k),
                              precision=np.eye(k) * rng.uniform(0.5, 3.0))
        _, chol = conditional_distribution(neighbours, ratings, prior, alpha)
        precision = chol @ chol.T
        expected = prior.precision + alpha * (neighbours.T @ neighbours)
        np.testing.assert_allclose(precision, expected, rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(precision, precision.T, atol=1e-10)
        assert (np.linalg.eigvalsh(precision) > 0).all()

    @COMMON_SETTINGS
    @given(st.integers(1, 6), st.integers(0, 20), st.integers(0, 2**31 - 1),
           st.floats(0.1, 10.0))
    def test_rank_one_chain_equals_one_shot_gram(self, k, n_ratings, seed,
                                                 alpha):
        """A chain of rank-one updates factorises the same Gram matrix.

        Starting from ``chol(Lambda)`` and applying one update per rating
        row ``sqrt(alpha) * v_j`` must land on the Cholesky factor of
        ``Lambda + alpha * V^T V`` — the rank-one kernel's whole premise.
        """
        rng = np.random.default_rng(seed)
        neighbours = rng.normal(size=(n_ratings, k))
        prior_precision = np.eye(k) * rng.uniform(0.5, 3.0)
        chol = np.linalg.cholesky(prior_precision)
        for row in neighbours:
            chol = cholesky_rank_one_update(chol, np.sqrt(alpha) * row)
        one_shot = np.linalg.cholesky(
            prior_precision + alpha * (neighbours.T @ neighbours))
        np.testing.assert_allclose(chol, one_shot, rtol=1e-6, atol=1e-8)

    @COMMON_SETTINGS
    @given(st.integers(1, 6), st.integers(2, 12), st.integers(0, 2**31 - 1))
    def test_batched_engine_matches_reference_engine(self, k, n_items, seed):
        """Randomised engine parity: stacked kernels == per-item loop."""
        from repro.sparse.csr import CompressedAxis

        rng = np.random.default_rng(seed)
        degrees = rng.integers(0, 8, size=n_items)
        indptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
        n_source = 10
        axis = CompressedAxis(
            indptr=indptr,
            indices=rng.integers(0, n_source, size=int(indptr[-1])).astype(np.int64),
            values=rng.normal(size=int(indptr[-1])))
        source = rng.normal(size=(n_source, k))
        prior = GaussianPrior.standard(k)
        noise = rng.standard_normal((n_items, k))
        reference = np.zeros((n_items, k))
        batched = np.zeros((n_items, k))
        ReferenceUpdateEngine().update_items(reference, source, axis, prior,
                                             2.0, noise)
        BatchedUpdateEngine().update_items(batched, source, axis, prior,
                                           2.0, noise)
        np.testing.assert_allclose(batched, reference, rtol=1e-7, atol=1e-9)

    @COMMON_SETTINGS
    @given(st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_wishart_samples_positive_definite(self, dim, seed):
        sample = sample_wishart(np.eye(dim), dim + 2.0, rng=seed)
        eigenvalues = np.linalg.eigvalsh(sample)
        assert (eigenvalues > -1e-10).all()
        np.testing.assert_allclose(sample, sample.T, atol=1e-10)

    @COMMON_SETTINGS
    @given(st.integers(1, 4), st.integers(1, 60), st.integers(0, 2**31 - 1))
    def test_normal_wishart_posterior_well_formed(self, k, n, seed):
        factors = np.random.default_rng(seed).normal(size=(n, k))
        posterior = normal_wishart_posterior(factors, NormalWishartPrior.uninformative(k))
        assert posterior.beta0 > 0
        assert posterior.nu0 >= k
        eigenvalues = np.linalg.eigvalsh(posterior.W0)
        assert (eigenvalues > 0).all()


# ---------------------------------------------------------------------------
# schedulers and buffers
# ---------------------------------------------------------------------------

class TestSchedulingProperties:
    @COMMON_SETTINGS
    @given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=80),
           st.integers(1, 12))
    def test_work_stealing_respects_makespan_bounds(self, durations, n_cores):
        tasks = [SimTask(i, d) for i, d in enumerate(durations)]
        result = WorkStealingScheduler().schedule(tasks, n_cores)
        total = sum(durations)
        longest = max(durations)
        assert result.makespan >= max(total / n_cores, longest) - 1e-9
        # Greedy scheduling 2x bound plus simulated overheads.
        assert result.makespan <= total / n_cores + longest + result.overhead + 1e-9

    @COMMON_SETTINGS
    @given(st.lists(st.floats(0.001, 5.0), min_size=1, max_size=80),
           st.integers(1, 12))
    def test_static_scheduler_conserves_work(self, durations, n_cores):
        tasks = [SimTask(i, d) for i, d in enumerate(durations)]
        result = StaticScheduler().schedule(tasks, n_cores)
        assert result.core_busy.sum() == pytest.approx(sum(durations))

    @COMMON_SETTINGS
    @given(st.integers(1, 20), st.integers(1, 50))
    def test_send_buffer_never_loses_items(self, capacity, n_items):
        sent = []
        buffer = SendBuffer(destination=0, capacity=capacity, num_latent=3,
                            on_flush=lambda dest, ids, payload: sent.extend(ids.tolist()))
        for item in range(n_items):
            buffer.add(item, np.full(3, float(item)))
        buffer.flush()
        assert sorted(sent) == list(range(n_items))
        assert buffer.stats.n_items == n_items
        expected_messages = int(np.ceil(n_items / capacity))
        assert buffer.stats.n_messages == expected_messages
