"""Unit tests for the workload and kernel cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.updates import UpdateMethod
from repro.parallel.cost_model import (
    DEFAULT_COST_MODEL,
    UpdateCostModel,
    WorkloadModel,
    calibrate_cost_model,
)


class TestWorkloadModel:
    def test_cost_is_affine_in_degree(self):
        model = WorkloadModel(fixed_cost=2.0, rating_cost=0.5)
        assert model.cost(0) == pytest.approx(2.0)
        assert model.cost(10) == pytest.approx(7.0)

    def test_vectorised(self):
        model = WorkloadModel(fixed_cost=1.0, rating_cost=1.0)
        np.testing.assert_allclose(model.cost(np.array([0, 1, 2])), [1.0, 2.0, 3.0])

    def test_total_cost(self):
        model = WorkloadModel(fixed_cost=1.0, rating_cost=0.1)
        assert model.total_cost([10, 20]) == pytest.approx(2.0 + 3.0)

    def test_validation(self):
        with pytest.raises(Exception):
            WorkloadModel(fixed_cost=0.0)


class TestUpdateCostModel:
    def test_rank_one_linear_in_ratings(self):
        model = DEFAULT_COST_MODEL
        c1 = model.cost(10, UpdateMethod.RANK_ONE)
        c2 = model.cost(20, UpdateMethod.RANK_ONE)
        c3 = model.cost(30, UpdateMethod.RANK_ONE)
        assert (c3 - c2) == pytest.approx(c2 - c1)

    def test_figure2_ordering_small_and_large_items(self):
        """The paper's Figure 2 ordering: rank-one cheapest for tiny items,
        serial Cholesky in the middle band, parallel Cholesky past ~1000."""
        model = DEFAULT_COST_MODEL
        assert model.best_method(1) is UpdateMethod.RANK_ONE
        assert model.best_method(200) is UpdateMethod.SERIAL_CHOLESKY
        assert model.best_method(5000, workers=4) is UpdateMethod.PARALLEL_CHOLESKY

    def test_parallel_crossover_near_paper_threshold(self):
        """The serial->parallel crossover should sit in the same decade as
        the paper's 1000-rating hybrid threshold."""
        model = DEFAULT_COST_MODEL
        crossover = None
        for degree in range(50, 20_000, 50):
            serial = model.cost(degree, UpdateMethod.SERIAL_CHOLESKY)
            parallel = model.cost(degree, UpdateMethod.PARALLEL_CHOLESKY, workers=4)
            if parallel < serial:
                crossover = degree
                break
        assert crossover is not None
        assert 300 <= crossover <= 3000

    def test_workers_reduce_parallel_cost(self):
        model = DEFAULT_COST_MODEL
        slow = model.cost(10_000, UpdateMethod.PARALLEL_CHOLESKY, workers=1)
        fast = model.cost(10_000, UpdateMethod.PARALLEL_CHOLESKY, workers=8)
        assert fast < slow

    def test_latent_dimension_scaling(self):
        model = DEFAULT_COST_MODEL
        small = model.cost(100, UpdateMethod.SERIAL_CHOLESKY, num_latent=model.k_ref)
        large = model.cost(100, UpdateMethod.SERIAL_CHOLESKY,
                           num_latent=2 * model.k_ref)
        assert large > 2 * small  # K^2 per-rating + K^3 factorisation terms

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.cost(10, "bogus")

    def test_invalid_workers(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.cost(10, UpdateMethod.SERIAL_CHOLESKY, workers=0)

    def test_workload_model_projection(self):
        workload = DEFAULT_COST_MODEL.workload_model(num_latent=32)
        assert workload.fixed_cost == pytest.approx(1.0)
        assert workload.rating_cost > 0


class TestCalibration:
    def test_calibrated_coefficients_positive_and_ordered(self):
        model = calibrate_cost_model(num_latent=8,
                                     degrees=(1, 4, 16, 64, 256),
                                     repeats=1, seed=0)
        assert model.rank_one_per_rating > 0
        assert model.chol_per_rating > 0
        assert model.parallel_overhead > 0
        # The rank-one slope (Python-level loop) must exceed the BLAS-backed
        # Gram slope by a wide margin — the calibration must detect this.
        assert model.rank_one_per_rating > 5 * model.chol_per_rating

    def test_calibrated_model_predictions_track_measurements(self):
        """Predicted serial-Cholesky time should grow with the rating count."""
        model = calibrate_cost_model(num_latent=8, degrees=(1, 8, 64, 512),
                                     repeats=1, seed=1)
        assert model.cost(512, UpdateMethod.SERIAL_CHOLESKY) > \
            model.cost(1, UpdateMethod.SERIAL_CHOLESKY)
