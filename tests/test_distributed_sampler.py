"""Correctness tests for the distributed (and bulk-synchronous) samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.priors import BPMFConfig
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.distributed.sync_sampler import BulkSynchronousGibbsSampler
from repro.utils.validation import ValidationError


class TestDistributedSamplerParity:
    def test_gather_mode_bitwise_parity_with_sequential(self, tiny_dataset, tiny_config):
        """With gathered hyperparameters the distributed chain is identical
        to the sequential one — the strongest form of the paper's accuracy
        parity claim."""
        seq = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                            tiny_dataset.split, seed=21)
        dist, _ = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=4, hyper_mode="gather",
                                            buffer_capacity=8)
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=21)
        np.testing.assert_allclose(dist.state.user_factors, seq.state.user_factors)
        np.testing.assert_allclose(dist.state.movie_factors, seq.state.movie_factors)
        assert dist.final_rmse == pytest.approx(seq.final_rmse)

    def test_shared_engine_matches_batched_distributed_run(self, tiny_dataset,
                                                           tiny_config):
        """Each rank's per-node phase through the process pool is
        bit-identical to the in-process batched engine."""
        batched, _ = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=3, engine="batched")
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=21)
        sampler = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=3, engine="shared",
                                            n_workers=2))
        shared, _ = sampler.run(tiny_dataset.split.train, tiny_dataset.split,
                                seed=21)
        np.testing.assert_array_equal(shared.state.user_factors,
                                      batched.state.user_factors)
        np.testing.assert_array_equal(shared.state.movie_factors,
                                      batched.state.movie_factors)
        assert not sampler._engine.pool_running  # closed by run()'s finally

    def test_stats_mode_statistical_parity(self, tiny_dataset, tiny_config):
        seq = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                            tiny_dataset.split, seed=21)
        dist, _ = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=3, hyper_mode="stats")
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=21)
        assert abs(dist.final_rmse - seq.final_rmse) < 0.1

    def test_rank_count_does_not_change_gather_results(self, tiny_dataset, tiny_config):
        results = []
        for n_ranks in (1, 2, 5):
            result, _ = DistributedGibbsSampler(
                tiny_config, DistributedOptions(n_ranks=n_ranks, hyper_mode="gather")
            ).run(tiny_dataset.split.train, tiny_dataset.split, seed=8)
            results.append(result)
        for result in results[1:]:
            np.testing.assert_allclose(result.state.user_factors,
                                       results[0].state.user_factors, atol=1e-8)

    def test_buffer_capacity_does_not_change_results(self, tiny_dataset, tiny_config):
        small_buffers, _ = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=3, buffer_capacity=1,
                                            hyper_mode="gather")
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=5)
        large_buffers, _ = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=3, buffer_capacity=1000,
                                            hyper_mode="gather")
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=5)
        np.testing.assert_allclose(small_buffers.state.user_factors,
                                   large_buffers.state.user_factors)

    def test_bulk_synchronous_sampler_same_samples_fewer_messages(self, tiny_dataset,
                                                                  tiny_config):
        options = DistributedOptions(n_ranks=4, buffer_capacity=4, hyper_mode="gather")
        streaming, streaming_info = DistributedGibbsSampler(tiny_config, options).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=13)
        bulk, bulk_info = BulkSynchronousGibbsSampler(tiny_config, options).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=13)
        np.testing.assert_allclose(bulk.state.user_factors,
                                   streaming.state.user_factors)
        assert bulk_info.buffer_stats.n_messages < streaming_info.buffer_stats.n_messages
        # The caller's options object must not have been mutated.
        assert options.buffer_capacity == 4


class TestDistributedDiagnostics:
    def test_run_info_traffic_consistency(self, tiny_dataset, tiny_config):
        result, info = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=4, buffer_capacity=8)
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=2)
        # Every item exchange planned must have happened each iteration.
        expected_items = info.items_exchanged_per_iteration * tiny_config.total_iterations
        assert info.buffer_stats.n_items == expected_items
        assert info.n_messages > 0
        assert info.bytes_sent > 0
        assert result.items_updated == tiny_config.total_iterations * (
            tiny_dataset.split.train.n_users + tiny_dataset.split.train.n_movies)

    def test_partition_can_be_supplied(self, tiny_dataset, tiny_config):
        from repro.distributed.partition import partition_ratings
        partition = partition_ratings(tiny_dataset.split.train, 2)
        result, info = DistributedGibbsSampler(
            tiny_config, DistributedOptions(n_ranks=2)
        ).run(tiny_dataset.split.train, tiny_dataset.split, seed=2,
              partition=partition)
        assert info.partition is partition

    def test_partition_rank_mismatch_rejected(self, tiny_dataset, tiny_config):
        from repro.distributed.partition import partition_ratings
        partition = partition_ratings(tiny_dataset.split.train, 3)
        with pytest.raises(ValidationError):
            DistributedGibbsSampler(
                tiny_config, DistributedOptions(n_ranks=2)
            ).run(tiny_dataset.split.train, tiny_dataset.split, partition=partition)

    def test_invalid_options(self):
        with pytest.raises(Exception):
            DistributedOptions(n_ranks=0)
        with pytest.raises(Exception):
            DistributedOptions(hyper_mode="nonsense")

    def test_accuracy_on_low_rank_signal(self, small_dataset):
        config = BPMFConfig(num_latent=5, burn_in=5, n_samples=8, alpha=8.0)
        result, _ = DistributedGibbsSampler(
            config, DistributedOptions(n_ranks=4)
        ).run(small_dataset.split.train, small_dataset.split, seed=3)
        assert result.final_rmse < 2.5 * small_dataset.config.noise_std
