"""Replica failover: reads survive a replica dying under load.

The acceptance bar from the issue: with two replicas and concurrent
query traffic, killing one replica mid-storm must keep **100% of reads
succeeding** (each bit-identical to the reference), with the client
failing over automatically.  Mutations replicate through the write
leader (replica 0) and retry exactly-once by default; the old
at-most-once, share-nothing behaviour stays available (and pinned here)
via ``retry_writes=False`` / ``replicate=False``.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.serving.net import Backoff, NetError, ReplicaSet, ServingClient
from repro.serving.net.client import AsyncServingClient, _AddressRing
from repro.serving.service import PredictionService

N_USERS, N_ITEMS, K = 40, 29, 4


@pytest.fixture(scope="module")
def snapshot():
    return make_bench_snapshot(N_USERS, N_ITEMS, K, seed=5)


@pytest.fixture(scope="module")
def reference(snapshot):
    return PredictionService(snapshot)


def test_kill_a_replica_mid_storm_keeps_reads_succeeding(snapshot,
                                                         reference):
    """The failover acceptance test: one of two replicas dies under load."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        results: list = []
        failures: list = []
        lock = threading.Lock()
        stop = threading.Event()

        def hammer() -> None:
            rng = np.random.default_rng(threading.get_ident() % 2**32)
            with ServingClient(replicas.addresses, cooldown=0.05,
                               timeout=30.0) as client:
                while not stop.is_set():
                    user = int(rng.integers(0, N_USERS))
                    try:
                        served = client.top_n(user, n=5)
                        with lock:
                            results.append((user, served))
                    except Exception as error:  # noqa: BLE001
                        with lock:
                            failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            # Let the storm get going, then kill replica 0 under it.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                with lock:
                    if len(results) >= 20:
                        break
                time.sleep(0.01)
            replicas.kill(0)
            deadline = time.monotonic() + 20.0
            target = len(results) + 40
            while time.monotonic() < deadline:
                with lock:
                    if len(results) >= target:
                        break
                time.sleep(0.01)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=60.0)

        assert not failures, \
            (f"{len(failures)}/{len(failures) + len(results)} reads failed "
             f"during failover: {failures[:3]}")
        assert len(results) >= target - 40 + 1
        for user, served in results:
            expected = reference.top_n(user, n=5)
            assert expected.items.tolist() == served.items.tolist()
            assert expected.scores.tobytes() == served.scores.tobytes()

        # Only the survivor is left in the address list.
        assert len(replicas.addresses) == 1
        stats = replicas.stats()
        assert stats[0] is None and stats[1] is not None


def test_opted_out_mutations_are_never_replayed_after_a_failure(snapshot):
    """``retry_writes=False`` pins the old at-most-once contract."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        addresses = list(replicas.addresses)
        dead_address = addresses[0]
        with ServingClient(addresses, cooldown=0.05, timeout=2.0,
                           retry_writes=False) as client:
            # Cache live connections to both replicas, leaving the ring
            # pointed back at replica 0.
            assert len(client.top_n(0, n=3)) == 3  # served by replica 0
            assert len(client.top_n(0, n=3)) == 3  # served by replica 1
            replicas.kill(0)
            # The rate goes out on the cached (now dead) connection: the
            # request bytes may have been consumed before the crash and
            # it carries no write_id, so it must NOT be replayed on the
            # survivor.
            with pytest.raises(NetError, match="not retried"):
                client.rate(0, np.array([1]), np.array([3.0]))
            # Reads fail over fine on the same client: the failed rate
            # put replica 0 on cooldown, so the ring goes straight to
            # the survivor.
            assert len(client.top_n(0, n=3)) == 3
        # A client pinned to the dead replica cannot read either.
        with ServingClient([dead_address], cooldown=0.05,
                           timeout=2.0) as pinned:
            with pytest.raises(NetError, match="every replica failed"):
                pinned.top_n(0, n=3)


def test_mutations_do_fail_over_when_nothing_was_sent(snapshot):
    """Connect-phase failures are retryable even for opted-out mutations.

    A fresh client whose first candidate is a dead *follower* never
    sends a byte of the request, so the mutation safely lands on the
    next replica — at-most-once refers to transmitted requests, not
    connection attempts.
    """
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        # Follower first in the ring, then the leader; kill the follower.
        addresses = list(reversed(replicas.addresses))
        replicas.kill(1)
        with ServingClient(addresses, cooldown=5.0, timeout=2.0,
                           retry_writes=False) as client:
            cold = client.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            assert cold == N_USERS
            assert client.rate(cold, np.array([2]), np.array([3.5])) == cold
        assert replicas.replicas[0].service.stats()["n_folded_in"] == 1


def test_async_client_fails_over_too(snapshot, reference):
    import asyncio

    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        async def exercise():
            async with AsyncServingClient(replicas.addresses,
                                          cooldown=0.05) as client:
                before = await client.top_n(3, n=5)
                replicas.kill(0)
                after = await client.top_n(3, n=5)
                health = await client.health()
                return before, after, health

        before, after, health = asyncio.run(exercise())
    expected = reference.top_n(3, n=5)
    for served in (before, after):
        assert expected.items.tolist() == served.items.tolist()
        assert expected.scores.tobytes() == served.scores.tobytes()
    assert health["status"] == "ok"


def test_mutations_replicate_to_every_replica(snapshot):
    """fold-in through any replica is readable on all of them."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        first = ServingClient(replicas.addresses[:1])
        second = ServingClient(replicas.addresses[1:])
        with first, second:
            # Write through the *follower*: it forwards to the leader,
            # which ships back — read-your-writes on both.
            cold = second.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            assert cold == N_USERS
            assert first.stats()["n_folded_in"] == 1
            assert second.stats()["n_folded_in"] == 1
            assert len(first.top_n(cold, n=3)) == 3
            assert len(second.top_n(cold, n=3)) == 3
            digests = {client.health(digest=True)["digest"]
                       for client in (first, second)}
            assert len(digests) == 1


def test_share_nothing_mode_is_still_available(snapshot):
    """``replicate=False`` restores per-replica mutations, pinned."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2, replicate=False) as replicas:
        first = ServingClient(replicas.addresses[:1])
        second = ServingClient(replicas.addresses[1:])
        with first, second:
            cold = first.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            assert first.stats()["n_folded_in"] == 1
            assert second.stats()["n_folded_in"] == 0
            assert len(first.top_n(cold, n=3)) == 3
            with pytest.raises(NetError, match="outside"):
                second.top_n(cold, n=3)


def test_address_ring_round_robin_and_cooldown():
    backoff = Backoff(base=0.2, cap=0.2, jitter=0.0)
    ring = _AddressRing([("a", 1), ("b", 2), ("c", 3)], backoff=backoff)
    assert ring.candidates() == [0, 1, 2]
    ring.mark_used(0)
    assert ring.candidates() == [1, 2, 0]
    ring.mark_dead(1)
    assert ring.candidates() == [2, 0, 1]  # cooling replica is last resort
    time.sleep(0.25)
    assert ring.candidates() == [1, 2, 0]  # cooldown expired
    with pytest.raises(ValueError):
        _AddressRing([])


def test_replica_set_validates_configuration(snapshot):
    with pytest.raises(ValueError, match="ports"):
        ReplicaSet(lambda index: PredictionService(snapshot),
                   n_replicas=2, ports=[0])
