"""Hypothesis verb parity: SimComm and SocketComm match identically.

Random round-structured programs — rank-major tagged sends, a barrier,
then per-rank receive descriptors (some weakened to ``ANY_SOURCE`` /
``ANY_TAG``), optionally an allreduce — execute on both worlds.  The
property: every rank receives the *identical payload sequence*, i.e. the
socket world's deterministic ``(epoch, source, seq)`` matching order
equals the simulated world's posting order, weakened wildcards included.

Programs whose weakened descriptors steal a message an exact descriptor
needed later make the simulated run raise (it matches eagerly and then
deadlocks); those are skipped via ``assume`` — the socket world would
block on exactly the same missing message, which a parity test cannot
observe in bounded time.
"""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.mpi.net import ANY_SOURCE, ANY_TAG, start_local_world
from repro.mpi.simmpi import SimCommWorld
from repro.utils.validation import ValidationError

# Socket worlds spin up real listeners per example; keep the count modest
# and the deadline off (connect latency is environment noise).
COMMON_SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def round_programs(draw):
    """(n_ranks, rounds) — see module docstring for the round shape."""
    n_ranks = draw(st.integers(min_value=2, max_value=3))
    n_rounds = draw(st.integers(min_value=1, max_value=3))
    rounds = []
    serial = 0
    for _ in range(n_rounds):
        sends = []  # (src, dst, tag, payload) in rank-major posting order
        for src in range(n_ranks):
            for _ in range(draw(st.integers(min_value=0, max_value=3))):
                dst = draw(st.integers(min_value=0, max_value=n_ranks - 1))
                tag = draw(st.integers(min_value=0, max_value=2))
                sends.append((src, dst, tag, {"serial": serial,
                                              "src": src, "tag": tag}))
                serial += 1
        recvs = {rank: [] for rank in range(n_ranks)}
        for rank in range(n_ranks):
            incoming = [(src, tag) for src, dst, tag, _ in sends
                        if dst == rank]
            if not incoming:
                continue
            n_recv = draw(st.integers(min_value=0,
                                      max_value=len(incoming)))
            order = draw(st.permutations(incoming))
            for source, tag in order[:n_recv]:
                if draw(st.booleans()):
                    source = ANY_SOURCE
                if draw(st.booleans()):
                    tag = ANY_TAG
                recvs[rank].append((source, tag))
        do_allreduce = draw(st.booleans())
        contributions = None
        if do_allreduce:
            contributions = [
                np.array(draw(st.lists(
                    st.floats(min_value=-8.0, max_value=8.0,
                              allow_nan=False, width=32),
                    min_size=2, max_size=2)), dtype=np.float64)
                for _ in range(n_ranks)]
        rounds.append((sends, recvs, contributions))
    return n_ranks, rounds


def _run_sim(n_ranks, rounds):
    """Orchestrated execution: rank-major posting, in-order receives."""
    world = SimCommWorld(n_ranks)
    comms = world.comms()
    received = {rank: [] for rank in range(n_ranks)}
    for index, (sends, recvs, contributions) in enumerate(rounds):
        for src, dst, tag, payload in sends:
            comms[src].isend(payload, dst, tag=tag)
        for rank in range(n_ranks):
            for source, tag in recvs[rank]:
                received[rank].append(comms[rank].recv(source=source,
                                                       tag=tag))
        if contributions is not None:
            key = f"round-{index}"
            result = None
            for rank in range(n_ranks):
                value = comms[rank].allreduce(contributions[rank], key=key)
                if value is not None:
                    result = value
            for _ in range(n_ranks - 1):
                comms[0].fetch_allreduce(key=key)
            for rank in range(n_ranks):
                received[rank].append(("allreduce", result.tobytes()))
    return received


def _run_socket(n_ranks, rounds):
    """The same program, one thread per rank over localhost sockets."""
    worlds = start_local_world(n_ranks, op_timeout=30.0)
    received = {rank: [] for rank in range(n_ranks)}
    errors = [None] * n_ranks

    def drive(rank):
        comm = worlds[rank].comm()
        try:
            for sends, recvs, contributions in rounds:
                for src, dst, tag, payload in sends:
                    if src == rank:
                        comm.isend(payload, dst, tag=tag)
                # Flush barrier: every send above is now in a mailbox,
                # epoch-stamped below any later round's traffic.
                comm.barrier()
                for source, tag in recvs[rank]:
                    received[rank].append(comm.recv(source=source, tag=tag,
                                                    timeout=20.0))
                if contributions is not None:
                    value = comm.allreduce(contributions[rank])
                    received[rank].append(("allreduce", value.tobytes()))
                # Round boundary: receives of this round happen before
                # any rank posts the next round's sends.
                comm.barrier()
        except BaseException as error:  # surfaced to hypothesis below
            errors[rank] = error
            worlds[rank].abort(f"rank {rank} failed: {error}")

    threads = [threading.Thread(target=drive, args=(rank,), daemon=True)
               for rank in range(n_ranks)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        for world in worlds:
            world.close()
    failures = [error for error in errors if error is not None]
    if failures:
        raise failures[0]
    return received


def _canonical(sequence):
    """Wire round-trips turn tuples into lists; compare structure-blind."""
    out = []
    for item in sequence:
        if isinstance(item, tuple):
            out.append(tuple(item))
        else:
            out.append(item)
    return out


@given(round_programs())
@COMMON_SETTINGS
def test_socket_and_sim_deliver_identical_sequences(program):
    n_ranks, rounds = program
    try:
        sim = _run_sim(n_ranks, rounds)
    except ValidationError:
        # A weakened wildcard consumed a message an exact descriptor
        # needed: the program deadlocks on any transport.  Skip.
        assume(False)
        return
    socket = _run_socket(n_ranks, rounds)
    for rank in range(n_ranks):
        assert _canonical(socket[rank]) == _canonical(sim[rank]), (
            f"rank {rank}: socket={socket[rank]} sim={sim[rank]}")


@given(st.integers(min_value=2, max_value=4),
       st.lists(st.floats(min_value=-16.0, max_value=16.0,
                          allow_nan=False, width=32),
                min_size=1, max_size=6))
@COMMON_SETTINGS
def test_allreduce_bitwise_matches_sim(n_ranks, values):
    """Socket allreduce reproduces SimComm's rank-order float association
    bit for bit, on every rank."""
    base = np.array(values, dtype=np.float64)
    contributions = [base * (rank + 1) + rank / 3.0
                     for rank in range(n_ranks)]

    sim_world = SimCommWorld(n_ranks)
    sim_comms = sim_world.comms()
    expected = None
    for rank in range(n_ranks):
        value = sim_comms[rank].allreduce(contributions[rank], key="p")
        if value is not None:
            expected = value
    for _ in range(n_ranks - 1):
        sim_comms[0].fetch_allreduce(key="p")

    worlds = start_local_world(n_ranks, op_timeout=30.0)
    results = [None] * n_ranks
    errors = [None] * n_ranks

    def drive(rank):
        try:
            results[rank] = worlds[rank].comm().allreduce(
                contributions[rank].copy(), key="p")
        except BaseException as error:
            errors[rank] = error
            worlds[rank].abort(f"rank {rank} failed: {error}")

    threads = [threading.Thread(target=drive, args=(rank,), daemon=True)
               for rank in range(n_ranks)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
    finally:
        for world in worlds:
            world.close()
    assert not [error for error in errors if error is not None]
    for result in results:
        assert np.asarray(result).tobytes() == expected.tobytes()
