"""Tests for the workload-aware partitioner and the communication plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.comm_plan import build_comm_plan
from repro.distributed.partition import Partition, partition_ratings
from repro.parallel.cost_model import WorkloadModel
from repro.utils.validation import ValidationError


class TestPartition:
    def test_every_item_owned_exactly_once(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 4)
        users_seen = np.concatenate([partition.users_of(r) for r in range(4)])
        movies_seen = np.concatenate([partition.movies_of(r) for r in range(4)])
        assert sorted(users_seen.tolist()) == list(range(chembl_tiny.ratings.n_users))
        assert sorted(movies_seen.tolist()) == list(range(chembl_tiny.ratings.n_movies))

    def test_single_rank_owns_everything(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 1)
        assert (partition.user_owner == 0).all()
        assert (partition.movie_owner == 0).all()

    def test_workload_balance(self, chembl_tiny):
        workload = WorkloadModel(fixed_cost=1.0, rating_cost=0.05)
        partition = partition_ratings(chembl_tiny.ratings, 4, workload=workload)
        assert partition.imbalance(chembl_tiny.ratings, workload) < 1.6

    def test_balance_beats_naive_equal_count_split_on_skewed_data(self, chembl_tiny):
        """The workload-aware split must balance better than splitting by
        item count when degrees are heavy-tailed (the movie axis here)."""
        ratings = chembl_tiny.ratings
        workload = WorkloadModel(fixed_cost=1.0, rating_cost=0.2)
        aware = partition_ratings(ratings, 4, workload=workload, reorder=False)
        boundaries = np.linspace(0, ratings.n_movies, 5).astype(int)
        naive_movie_owner = np.zeros(ratings.n_movies, dtype=np.int64)
        for rank in range(4):
            naive_movie_owner[boundaries[rank]:boundaries[rank + 1]] = rank
        naive = Partition(n_ranks=4, user_owner=aware.user_owner,
                          movie_owner=naive_movie_owner)
        assert aware.imbalance(ratings, workload) <= naive.imbalance(ratings, workload)

    def test_explicit_cost_vectors(self, simple_ratings):
        partition = partition_ratings(
            simple_ratings, 2,
            user_costs=np.array([10.0, 1.0, 1.0, 1.0]),
            movie_costs=np.ones(3))
        work = np.zeros(2)
        np.add.at(work, partition.user_owner, np.array([10.0, 1.0, 1.0, 1.0]))
        assert work.max() <= 10.0 + 1e-9  # the heavy user sits alone-ish

    def test_explicit_cost_vector_shape_checked(self, simple_ratings):
        with pytest.raises(ValidationError):
            partition_ratings(simple_ratings, 2, user_costs=np.ones(3))

    def test_reorder_reduces_exchanged_items_on_block_structured_data(self):
        from repro.datasets import make_scaling_workload
        ratings = make_scaling_workload(n_users=600, n_movies=120, n_ratings=6000,
                                        n_communities=4, community_bias=0.95, seed=2)
        shuffled = ratings.permute(
            np.random.default_rng(0).permutation(ratings.n_users),
            np.random.default_rng(1).permutation(ratings.n_movies))
        with_reorder = build_comm_plan(shuffled, partition_ratings(shuffled, 4,
                                                                   reorder=True))
        without_reorder = build_comm_plan(shuffled, partition_ratings(shuffled, 4,
                                                                      reorder=False))
        assert with_reorder.total_items_exchanged() <= \
            without_reorder.total_items_exchanged()

    def test_rank_sizes_and_work_per_rank(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 3)
        sizes = partition.rank_sizes()
        assert len(sizes) == 3
        assert sum(users for users, _ in sizes) == chembl_tiny.ratings.n_users
        work = partition.work_per_rank(chembl_tiny.ratings, WorkloadModel())
        assert work.shape == (3,)
        assert (work > 0).all()

    def test_invalid_owner_values_rejected(self):
        with pytest.raises(ValidationError):
            Partition(n_ranks=2, user_owner=np.array([0, 2]),
                      movie_owner=np.array([0]))

    def test_more_ranks_than_items(self, simple_ratings):
        partition = partition_ratings(simple_ratings, 8)
        assert partition.user_owner.max() < 8
        assert partition.movie_owner.max() < 8


class TestCommunicationPlan:
    def test_destinations_are_exactly_the_partner_owners(self, simple_ratings):
        partition = Partition(
            n_ranks=2,
            user_owner=np.array([0, 0, 1, 1]),
            movie_owner=np.array([0, 1, 1]),
        )
        plan = build_comm_plan(simple_ratings, partition)
        # Movie 0 (owner 0) is rated by users 0,1 (rank 0) and 3 (rank 1):
        assert plan.movie_destinations[0].tolist() == [1]
        # Movie 1 (owner 1) is rated by users 0,3 -> ranks 0,1; owner removed:
        assert plan.movie_destinations[1].tolist() == [0]
        # Movie 2 (owner 1) is rated by users 1 (rank 0), 2 (rank 1):
        assert plan.movie_destinations[2].tolist() == [0]
        # User 0 (owner 0) rated movies 0 (rank 0), 1 (rank 1):
        assert plan.user_destinations[0].tolist() == [1]
        # User 2 (owner 1) rated movies 1, 2 (both rank 1): nothing to send.
        assert plan.user_destinations[2].tolist() == []

    def test_owner_never_in_destinations(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 4)
        plan = build_comm_plan(chembl_tiny.ratings, partition)
        for movie, dests in enumerate(plan.movie_destinations):
            assert partition.movie_owner[movie] not in dests
        for user, dests in enumerate(plan.user_destinations):
            assert partition.user_owner[user] not in dests

    def test_items_between_matches_destination_lists(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 3)
        plan = build_comm_plan(chembl_tiny.ratings, partition)
        matrix = plan.items_between("movies")
        assert matrix.sum() == sum(len(d) for d in plan.movie_destinations)
        assert np.trace(matrix) == 0

    def test_single_rank_has_no_traffic(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 1)
        plan = build_comm_plan(chembl_tiny.ratings, partition)
        assert plan.total_items_exchanged() == 0
        assert plan.replication_factor("movies") == 0.0

    def test_replication_factor_bounded_by_ranks(self, chembl_tiny):
        partition = partition_ratings(chembl_tiny.ratings, 4)
        plan = build_comm_plan(chembl_tiny.ratings, partition)
        assert 0.0 <= plan.replication_factor("movies") <= 3.0
        assert 0.0 <= plan.replication_factor("users") <= 3.0

    def test_more_ranks_means_more_exchange(self, chembl_tiny):
        ratings = chembl_tiny.ratings
        few = build_comm_plan(ratings, partition_ratings(ratings, 2))
        many = build_comm_plan(ratings, partition_ratings(ratings, 8))
        assert many.total_items_exchanged() >= few.total_items_exchanged()

    def test_invalid_phase_and_shape(self, chembl_tiny, simple_ratings):
        partition = partition_ratings(chembl_tiny.ratings, 2)
        plan = build_comm_plan(chembl_tiny.ratings, partition)
        with pytest.raises(ValidationError):
            plan.items_between("bogus")
        with pytest.raises(ValidationError):
            build_comm_plan(simple_ratings, partition)

    def test_plan_covers_every_cross_rank_rating(self, chembl_tiny):
        """For every rating whose user and movie live on different ranks, the
        movie must be shipped to the user's rank and vice versa."""
        ratings = chembl_tiny.ratings
        partition = partition_ratings(ratings, 4)
        plan = build_comm_plan(ratings, partition)
        users, movies, _ = ratings.triplets()
        for u, m in zip(users[:500], movies[:500]):
            user_rank = partition.user_owner[u]
            movie_rank = partition.movie_owner[m]
            if user_rank != movie_rank:
                assert user_rank in plan.movie_destinations[m]
                assert movie_rank in plan.user_destinations[u]
