"""Checkpoint store tests: round-trip fidelity and exact-resume parity.

The headline contract (alongside ``tests/test_batch_engine_parity.py``):
a chain checkpointed at sweep k and resumed reproduces the uninterrupted
chain *bit for bit* — same factors, same RMSE traces — for the sequential,
multicore and distributed samplers, and even across backends (a sequential
checkpoint resumed on the multicore sampler).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.distributed.sampler import DistributedGibbsSampler, DistributedOptions
from repro.multicore.sampler import MulticoreGibbsSampler, MulticoreOptions
from repro.serving.checkpoint import (
    SNAPSHOT_FORMAT,
    CheckpointConfig,
    Snapshot,
    encode_rng_state,
    load_snapshot,
    restore_generator,
    save_snapshot,
    snapshot_from_result,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def data():
    return make_low_rank_dataset(SyntheticConfig(
        n_users=50, n_movies=35, rank=3, density=0.3, noise_std=0.25,
        test_fraction=0.2, seed=77))


FULL = BPMFConfig(num_latent=6, alpha=4.0, burn_in=2, n_samples=4)
#: Same chain stopped after 3 of FULL's 6 sweeps (burn-in + 1 sample).
HALF = BPMFConfig(num_latent=6, alpha=4.0, burn_in=2, n_samples=1)


def _train_with_checkpoint(sampler_cls, options, data, path, seed=5):
    options.checkpoint = CheckpointConfig(path=path)
    return sampler_cls(HALF, options).run(data.split.train, data.split,
                                          seed=seed)


class TestRngRoundTrip:
    def test_generator_state_continues_exactly(self):
        rng = np.random.default_rng(123)
        rng.standard_normal(100)
        clone = restore_generator(json.loads(json.dumps(encode_rng_state(rng))))
        np.testing.assert_array_equal(clone.standard_normal(50),
                                      rng.standard_normal(50))

    def test_mt19937_array_state_round_trips(self):
        rng = np.random.Generator(np.random.MT19937(7))
        rng.standard_normal(10)
        clone = restore_generator(json.loads(json.dumps(encode_rng_state(rng))))
        np.testing.assert_array_equal(clone.standard_normal(10),
                                      rng.standard_normal(10))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValidationError):
            restore_generator({"bit_generator": "NotAGenerator"})


class TestSnapshotRoundTrip:
    def test_all_fields_survive(self, data, tmp_path):
        path = tmp_path / "snap.npz"
        result = GibbsSampler(HALF).run(data.split.train, data.split, seed=1)
        rng = np.random.default_rng(9)
        snapshot = snapshot_from_result(result, rng=rng, offset=1.5,
                                        metadata={"run": "unit-test"})
        snapshot.prediction_sum = np.arange(data.split.n_test, dtype=np.float64)
        snapshot.prediction_count = 3
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)

        np.testing.assert_array_equal(loaded.state.user_factors,
                                      result.state.user_factors)
        np.testing.assert_array_equal(loaded.state.movie_factors,
                                      result.state.movie_factors)
        np.testing.assert_array_equal(loaded.state.user_prior.precision,
                                      result.state.user_prior.precision)
        assert loaded.state.iteration == HALF.total_iterations
        assert loaded.config["num_latent"] == 6.0
        assert loaded.alpha == 4.0
        assert loaded.mean_count == result.factor_means.n_samples
        np.testing.assert_array_equal(loaded.mean_user_sum,
                                      result.factor_means.user_sum)
        np.testing.assert_array_equal(loaded.prediction_sum,
                                      snapshot.prediction_sum)
        assert loaded.prediction_count == 3
        assert loaded.rmse_running_mean == result.rmse_running_mean
        assert loaded.rmse_burn_in == result.rmse_burn_in
        assert loaded.items_updated == result.items_updated
        assert loaded.offset == 1.5
        assert loaded.metadata == {"run": "unit-test"}
        # The generator round-trips through the snapshot too.
        np.testing.assert_array_equal(
            restore_generator(loaded.rng_state).standard_normal(8),
            rng.standard_normal(8))

    def test_float32_snapshot_round_trip(self, data, tmp_path):
        """dtype="float32" halves the factor payloads; loading widens back
        to float64 with single-precision fidelity and verified integrity."""
        path64 = tmp_path / "snap64.npz"
        path32 = tmp_path / "snap32.npz"
        result = GibbsSampler(HALF).run(data.split.train, data.split, seed=1)
        snapshot = snapshot_from_result(result, rng=np.random.default_rng(9))
        save_snapshot(snapshot, path64)
        save_snapshot(snapshot, path32, dtype="float32")
        assert path32.stat().st_size < path64.stat().st_size
        loaded = load_snapshot(path32)  # checksum verifies narrowed payloads
        assert loaded.state.user_factors.dtype == np.float64
        np.testing.assert_allclose(loaded.state.user_factors,
                                   result.state.user_factors,
                                   rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(loaded.mean_user_sum,
                                   result.factor_means.user_sum,
                                   rtol=1e-6, atol=1e-6)
        # Priors and the RNG state never lose precision.
        np.testing.assert_array_equal(loaded.state.user_prior.precision,
                                      result.state.user_prior.precision)
        with pytest.raises(ValidationError):
            save_snapshot(snapshot, path32, dtype="float16")

    def test_checkpoint_config_dtype_flows_into_saves(self, data, tmp_path):
        path = tmp_path / "ck32.npz"
        options = SamplerOptions(
            checkpoint=CheckpointConfig(path=path, dtype="float32"))
        result = GibbsSampler(HALF, options).run(data.split.train, data.split,
                                                 seed=5)
        loaded = load_snapshot(path)
        np.testing.assert_allclose(loaded.state.user_factors,
                                   result.state.user_factors,
                                   rtol=1e-6, atol=1e-6)
        with pytest.raises(ValidationError):
            CheckpointConfig(path=path, dtype="int8")

    def test_bpmf_config_rebuilds(self, data, tmp_path):
        result = GibbsSampler(HALF).run(data.split.train, data.split, seed=1)
        snapshot = snapshot_from_result(result)
        save_snapshot(snapshot, tmp_path / "snap.npz")
        config = load_snapshot(tmp_path / "snap.npz").bpmf_config()
        assert config.num_latent == HALF.num_latent
        assert config.alpha == HALF.alpha
        assert config.total_iterations == HALF.total_iterations

    def test_posterior_mean_state_falls_back_to_last_sample(self, data):
        burn_only = Snapshot(state=GibbsSampler(HALF).run(
            data.split.train, data.split, seed=1).state)
        np.testing.assert_array_equal(
            burn_only.posterior_mean_state().user_factors,
            burn_only.state.user_factors)

    def test_tampered_snapshot_rejected(self, data, tmp_path):
        path = tmp_path / "snap.npz"
        result = GibbsSampler(HALF).run(data.split.train, data.split, seed=1)
        save_snapshot(snapshot_from_result(result), path)
        # Corrupt one factor entry while keeping the stored checksum.
        with np.load(path, allow_pickle=False) as archive:
            payload = {key: archive[key].copy() for key in archive.files}
        payload["user_factors"][0, 0] += 1e-3
        np.savez_compressed(path, **payload)
        with pytest.raises(ValidationError, match="integrity"):
            load_snapshot(path)
        # But verify=False loads it (forensics escape hatch).
        assert load_snapshot(path, verify=False).state.n_users == 50

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, format=np.array("something-else"))
        with pytest.raises(ValidationError, match="snapshot"):
            load_snapshot(path)

    def test_checkpoint_config_validation(self, tmp_path):
        with pytest.raises(ValidationError):
            CheckpointConfig(path=tmp_path / "x.npz", every=0)
        config = CheckpointConfig(path=tmp_path / "x.npz", every=3)
        assert config.due(2, 10) and not config.due(3, 10)
        assert config.due(9, 10)  # final sweep always saves


class TestExactResume:
    """Checkpoint at sweep 3, resume to 6, compare with an unbroken run."""

    def test_sequential_resume_is_bit_identical(self, data, tmp_path):
        path = tmp_path / "seq.npz"
        full = GibbsSampler(FULL).run(data.split.train, data.split, seed=5)
        _train_with_checkpoint(GibbsSampler, SamplerOptions(), data, path)
        resumed = GibbsSampler(FULL).run(data.split.train, data.split,
                                         resume=path)
        np.testing.assert_array_equal(resumed.state.user_factors,
                                      full.state.user_factors)
        np.testing.assert_array_equal(resumed.state.movie_factors,
                                      full.state.movie_factors)
        assert resumed.rmse_burn_in == full.rmse_burn_in
        assert resumed.rmse_per_sample == full.rmse_per_sample
        assert resumed.rmse_running_mean == full.rmse_running_mean
        assert resumed.items_updated == full.items_updated
        np.testing.assert_array_equal(resumed.predictions, full.predictions)
        np.testing.assert_array_equal(resumed.factor_means.user_sum,
                                      full.factor_means.user_sum)

    def test_multicore_resume_matches_sequential_chain(self, data, tmp_path):
        """A sequential checkpoint resumed on 2 threads: same chain."""
        path = tmp_path / "mc.npz"
        full = GibbsSampler(FULL).run(data.split.train, data.split, seed=5)
        _train_with_checkpoint(GibbsSampler, SamplerOptions(), data, path)
        resumed = MulticoreGibbsSampler(
            FULL, MulticoreOptions(n_threads=2)).run(
            data.split.train, data.split, resume=path)
        np.testing.assert_array_equal(resumed.state.user_factors,
                                      full.state.user_factors)
        assert resumed.rmse_running_mean == full.rmse_running_mean

    def test_multicore_checkpoint_resumes(self, data, tmp_path):
        path = tmp_path / "mc2.npz"
        options = MulticoreOptions(n_threads=2)
        full = MulticoreGibbsSampler(FULL, MulticoreOptions(n_threads=2)).run(
            data.split.train, data.split, seed=5)
        _train_with_checkpoint(MulticoreGibbsSampler, options, data, path)
        resumed = MulticoreGibbsSampler(FULL, MulticoreOptions(n_threads=2)).run(
            data.split.train, data.split, resume=path)
        np.testing.assert_array_equal(resumed.state.user_factors,
                                      full.state.user_factors)

    def test_distributed_resume_is_bit_identical(self, data, tmp_path):
        path = tmp_path / "dist.npz"
        options = DistributedOptions(n_ranks=3)
        full, _ = DistributedGibbsSampler(FULL, options).run(
            data.split.train, data.split, seed=5)
        DistributedGibbsSampler(HALF, DistributedOptions(
            n_ranks=3, checkpoint=CheckpointConfig(path=path))).run(
            data.split.train, data.split, seed=5)
        resumed, _ = DistributedGibbsSampler(FULL, DistributedOptions(
            n_ranks=3)).run(data.split.train, data.split, resume=path)
        np.testing.assert_array_equal(resumed.state.user_factors,
                                      full.state.user_factors)
        np.testing.assert_array_equal(resumed.state.movie_factors,
                                      full.state.movie_factors)
        assert resumed.rmse_running_mean == full.rmse_running_mean

    def test_save_every_k_writes_at_k_and_final(self, data, tmp_path):
        path = tmp_path / "every.npz"
        saved_iterations = []
        real_due = CheckpointConfig.due

        options = SamplerOptions(checkpoint=CheckpointConfig(path=path, every=2))
        GibbsSampler(FULL, options).run(data.split.train, data.split, seed=5)
        # FULL has 6 sweeps; every=2 saves after sweeps 2, 4, 6 (1-based).
        assert load_snapshot(path).state.iteration == FULL.total_iterations
        for iteration in range(FULL.total_iterations):
            if real_due(options.checkpoint, iteration, FULL.total_iterations):
                saved_iterations.append(iteration + 1)
        assert saved_iterations == [2, 4, 6]

    def test_resume_and_state_are_mutually_exclusive(self, data, tmp_path):
        path = tmp_path / "x.npz"
        result = _train_with_checkpoint(GibbsSampler, SamplerOptions(),
                                        data, path)
        with pytest.raises(ValidationError, match="not both"):
            GibbsSampler(FULL).run(data.split.train, data.split,
                                   state=result.state, resume=path)

    def test_resume_beyond_configured_total_rejected(self, data, tmp_path):
        path = tmp_path / "long.npz"
        _train_with_checkpoint(GibbsSampler, SamplerOptions(), data, path)
        short = BPMFConfig(num_latent=6, alpha=4.0, burn_in=1, n_samples=1)
        with pytest.raises(ValidationError, match="beyond"):
            GibbsSampler(short).run(data.split.train, data.split, resume=path)

    def test_resume_with_mismatched_model_config_rejected(self, data, tmp_path):
        path = tmp_path / "mismatch.npz"
        _train_with_checkpoint(GibbsSampler, SamplerOptions(), data, path)
        other_alpha = BPMFConfig(num_latent=6, alpha=8.0, burn_in=2, n_samples=4)
        with pytest.raises(ValidationError, match="alpha"):
            GibbsSampler(other_alpha).run(data.split.train, data.split,
                                          resume=path)
        other_burn = BPMFConfig(num_latent=6, alpha=4.0, burn_in=3, n_samples=3)
        with pytest.raises(ValidationError, match="burn_in"):
            GibbsSampler(other_burn).run(data.split.train, data.split,
                                         resume=path)

    def test_snapshot_from_result_resumes_the_prediction_mean(self, data,
                                                              tmp_path):
        """The reconstructed accumulator continues the running-mean trace."""
        path = tmp_path / "from-result.npz"
        rng = np.random.default_rng(5)
        full = GibbsSampler(FULL).run(data.split.train, data.split, seed=5)
        run_rng = np.random.default_rng(5)
        half = GibbsSampler(HALF).run(data.split.train, data.split,
                                      seed=run_rng)
        save_snapshot(snapshot_from_result(half, rng=run_rng), path)
        resumed = GibbsSampler(FULL).run(data.split.train, data.split,
                                         resume=path)
        np.testing.assert_array_equal(resumed.state.user_factors,
                                      full.state.user_factors)
        np.testing.assert_allclose(resumed.predictions, full.predictions,
                                   rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(resumed.rmse_running_mean,
                                   full.rmse_running_mean, rtol=1e-12)
        del rng

    def test_stale_tmp_file_cannot_clobber_a_fresh_save(self, data, tmp_path):
        """A leftover .tmp from a killed process never becomes the snapshot."""
        path = tmp_path / "clobber.npz"
        stale = path.with_name(path.name + ".tmp.npz")
        stale.write_bytes(b"garbage from a crashed process")
        result = GibbsSampler(HALF).run(data.split.train, data.split, seed=1)
        save_snapshot(snapshot_from_result(result), path)
        assert load_snapshot(path).state.n_users == 50  # fresh data won
        assert not stale.exists()

    def test_resume_from_final_snapshot_is_a_noop_run(self, data, tmp_path):
        path = tmp_path / "final.npz"
        options = SamplerOptions(checkpoint=CheckpointConfig(path=path))
        full = GibbsSampler(FULL, options).run(data.split.train, data.split,
                                               seed=5)
        resumed = GibbsSampler(FULL).run(data.split.train, data.split,
                                         resume=path)
        assert resumed.state.iteration == full.state.iteration
        np.testing.assert_array_equal(resumed.predictions, full.predictions)

    def test_format_tag_is_versioned(self):
        assert SNAPSHOT_FORMAT == "repro-snapshot-v1"
