"""Unit tests for the simulated multicore machine and its schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.updates import HybridUpdatePolicy
from repro.parallel.graph_engine import GraphEngineScheduler
from repro.parallel.simulator import (
    CoreClock,
    ScheduleResult,
    SimTask,
    simulate_serial,
    tasks_from_degrees,
)
from repro.parallel.static_scheduler import DynamicChunkScheduler, StaticScheduler
from repro.parallel.thread_backend import ThreadPoolBackend
from repro.parallel.work_stealing import WorkStealingScheduler
from repro.utils.validation import ValidationError


def make_tasks(durations, splittable=None):
    """Helper: build SimTasks from plain durations."""
    tasks = []
    for i, duration in enumerate(durations):
        subtasks = ()
        if splittable and i in splittable:
            subtasks = tuple([duration / 4] * 4)
        tasks.append(SimTask(task_id=i, duration=duration,
                             subtask_durations=subtasks))
    return tasks


ALL_SCHEDULERS = [
    ("work-stealing", WorkStealingScheduler()),
    ("static", StaticScheduler()),
    ("dynamic", DynamicChunkScheduler(chunk_size=2)),
    ("graph", GraphEngineScheduler()),
]


class TestSimTask:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            SimTask(task_id=0, duration=-1.0)
        with pytest.raises(ValidationError):
            SimTask(task_id=0, duration=1.0, subtask_durations=(0.5, -0.1))

    def test_splittable_flag(self):
        assert not SimTask(0, 1.0).splittable
        assert not SimTask(0, 1.0, subtask_durations=(1.0,)).splittable
        assert SimTask(0, 1.0, subtask_durations=(0.5, 0.5)).splittable

    def test_split_total(self):
        assert SimTask(0, 1.0).split_total == 1.0
        assert SimTask(0, 1.0, subtask_durations=(0.6, 0.6)).split_total == pytest.approx(1.2)


class TestCoreClock:
    def test_tracks_busy_time_and_makespan(self):
        clock = CoreClock(2)
        t, core = clock.next_free()
        clock.run(core, t, 3.0)
        t, core = clock.next_free()
        clock.run(core, t, 1.0)
        assert clock.makespan == pytest.approx(3.0)
        assert clock.busy.sum() == pytest.approx(4.0)

    def test_invalid_core_count(self):
        with pytest.raises(Exception):
            CoreClock(0)


class TestSimulateSerial:
    def test_sum_of_durations(self):
        result = simulate_serial(make_tasks([1.0, 2.0, 3.0]))
        assert result.makespan == pytest.approx(6.0)
        assert result.n_cores == 1
        assert result.throughput() == pytest.approx(0.5)


class TestScheduleResultProperties:
    def test_utilization_and_imbalance(self):
        result = ScheduleResult(n_cores=2, makespan=10.0,
                                core_busy=np.array([10.0, 5.0]), n_tasks=3)
        assert result.utilization == pytest.approx(0.75)
        assert result.imbalance == pytest.approx(10.0 / 7.5)
        assert result.total_work == pytest.approx(15.0)

    def test_degenerate_zero_makespan(self):
        result = ScheduleResult(n_cores=2, makespan=0.0,
                                core_busy=np.zeros(2), n_tasks=0)
        assert result.utilization == 1.0
        assert result.throughput(10) == float("inf")


@pytest.mark.parametrize("name,scheduler", ALL_SCHEDULERS)
class TestSchedulerContracts:
    """Invariants every scheduler must satisfy."""

    def test_all_work_is_executed(self, name, scheduler, rng):
        durations = rng.uniform(0.1, 1.0, size=50)
        tasks = make_tasks(durations)
        result = scheduler.schedule(tasks, 4)
        assert result.n_tasks == 50
        # Busy time covers at least the raw work (overheads may add to it).
        assert result.core_busy.sum() >= durations.sum() - 1e-9

    def test_makespan_at_least_critical_path(self, name, scheduler, rng):
        durations = rng.uniform(0.1, 1.0, size=30)
        tasks = make_tasks(durations)
        result = scheduler.schedule(tasks, 4)
        assert result.makespan >= durations.max() - 1e-9
        assert result.makespan >= durations.sum() / 4 - 1e-9

    def test_single_core_equals_serial_work(self, name, scheduler, rng):
        durations = rng.uniform(0.1, 1.0, size=20)
        tasks = make_tasks(durations)
        result = scheduler.schedule(tasks, 1)
        # Within engine overheads, a single core just runs everything.
        assert result.makespan >= durations.sum() - 1e-9

    def test_more_cores_never_hurt_much(self, name, scheduler, rng):
        durations = rng.uniform(0.1, 1.0, size=64)
        tasks = make_tasks(durations)
        t2 = scheduler.schedule(tasks, 2).makespan
        t8 = scheduler.schedule(tasks, 8).makespan
        assert t8 <= t2 * 1.05

    def test_empty_task_list(self, name, scheduler):
        result = scheduler.schedule([], 4)
        assert result.n_tasks == 0
        assert result.makespan >= 0.0

    def test_invalid_core_count(self, name, scheduler):
        with pytest.raises(Exception):
            scheduler.schedule(make_tasks([1.0]), 0)


class TestWorkStealingSpecifics:
    def test_balances_skewed_workload_better_than_static(self, rng):
        # One huge task plus many small ones, in an adversarial order for
        # contiguous chunking.
        durations = np.concatenate([[50.0], rng.uniform(0.5, 1.5, size=63)])
        tasks = make_tasks(durations, splittable={0})
        stealing = WorkStealingScheduler().schedule(tasks, 8)
        static = StaticScheduler().schedule(tasks, 8)
        assert stealing.makespan < static.makespan

    def test_nested_parallelism_splits_heavy_tasks(self):
        tasks = make_tasks([40.0, 1.0, 1.0, 1.0], splittable={0})
        with_nesting = WorkStealingScheduler(nested_parallelism=True).schedule(tasks, 4)
        without_nesting = WorkStealingScheduler(nested_parallelism=False).schedule(tasks, 4)
        assert with_nesting.makespan < without_nesting.makespan
        assert without_nesting.makespan >= 40.0

    def test_steals_are_counted_and_rebalance(self):
        # Round-robin seeding puts every heavy task on core 0; the other
        # cores run out of their own work and must steal.
        durations = [10.0, 0.1, 0.1, 0.1] * 16
        result = WorkStealingScheduler().schedule(make_tasks(durations), 4)
        assert result.n_steals > 0
        assert result.overhead > 0
        # Stealing keeps the makespan well below the all-on-one-core bound.
        assert result.makespan < 0.6 * (10.0 * 16)

    def test_near_perfect_speedup_on_uniform_tasks(self):
        tasks = make_tasks([1.0] * 128)
        result = WorkStealingScheduler().schedule(tasks, 8)
        assert result.makespan == pytest.approx(16.0, rel=0.05)


class TestStaticSchedulerSpecifics:
    def test_contiguous_chunking_suffers_from_clustered_heavy_items(self):
        # All heavy items at the front of the range -> one unlucky thread.
        heavy_front = make_tasks([10.0] * 8 + [0.1] * 56)
        balanced = make_tasks([10.0, 0.1] * 8 + [0.1] * 48)
        front_result = StaticScheduler().schedule(heavy_front, 8)
        spread_result = StaticScheduler().schedule(balanced, 8)
        assert front_result.makespan > spread_result.makespan

    def test_dynamic_beats_static_on_skew(self, rng):
        durations = np.concatenate([rng.uniform(5, 10, size=8),
                                    rng.uniform(0.1, 0.2, size=56)])
        tasks = make_tasks(durations)
        static = StaticScheduler().schedule(tasks, 8)
        dynamic = DynamicChunkScheduler(chunk_size=1).schedule(tasks, 8)
        assert dynamic.makespan <= static.makespan


class TestGraphEngineSpecifics:
    def test_engine_overhead_slows_it_down(self, rng):
        durations = rng.uniform(0.5, 1.0, size=64)
        tasks = make_tasks(durations)
        engine = GraphEngineScheduler().schedule(tasks, 8)
        stealing = WorkStealingScheduler().schedule(tasks, 8)
        assert engine.makespan > stealing.makespan

    def test_lock_contention_grows_with_cores(self):
        tasks = make_tasks([0.001] * 100)
        engine = GraphEngineScheduler(lock_contention=1e-3)
        few = engine.schedule(tasks, 2)
        many = engine.schedule(tasks, 16)
        # Per-update cost grows with cores, so total busy work grows too.
        assert many.total_work > few.total_work


class TestTasksFromDegrees:
    def test_heavy_items_get_subtasks(self):
        policy = HybridUpdatePolicy(parallel_threshold=100, block_grain=50)
        tasks = tasks_from_degrees([10, 50, 500], num_latent=8, policy=policy)
        assert not tasks[0].splittable
        assert not tasks[1].splittable
        assert tasks[2].splittable
        assert len(tasks[2].subtask_durations) == policy.n_subtasks(500)

    def test_durations_increase_with_degree(self):
        tasks = tasks_from_degrees([1, 10, 100], num_latent=8)
        durations = [task.duration for task in tasks]
        assert durations == sorted(durations)

    def test_tags_and_ids(self):
        tasks = tasks_from_degrees([1, 2], num_latent=4, tag="movies", id_offset=10)
        assert tasks[0].task_id == 10 and tasks[1].task_id == 11
        assert tasks[0].tag == "movies"


class TestThreadPoolBackend:
    def test_serial_fallback_processes_all(self):
        seen = []
        backend = ThreadPoolBackend(n_threads=1)
        count = backend.map_items(seen.append, range(20))
        assert count == 20
        assert seen == list(range(20))

    def test_threaded_processes_all_exactly_once(self):
        import threading
        lock = threading.Lock()
        seen = []

        def record(item):
            with lock:
                seen.append(item)

        backend = ThreadPoolBackend(n_threads=4, chunk_size=3)
        count = backend.map_items(record, range(100))
        assert count == 100
        assert sorted(seen) == list(range(100))

    def test_exceptions_propagate(self):
        backend = ThreadPoolBackend(n_threads=2, chunk_size=1)

        def boom(item):
            if item == 5:
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            backend.map_items(boom, range(10))

    def test_invalid_configuration(self):
        with pytest.raises(Exception):
            ThreadPoolBackend(n_threads=0)
