"""Unit tests for the ALS and SGD baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.als import ALSConfig, run_als
from repro.baselines.sgd import SGDConfig, run_sgd
from repro.core.priors import BPMFConfig
from repro.core.gibbs import GibbsSampler


class TestALS:
    def test_training_error_decreases(self, small_dataset):
        result = run_als(small_dataset.split.train, small_dataset.split,
                         num_latent=5, n_iterations=8, regularization=0.05, seed=0)
        assert result.train_rmse[-1] < result.train_rmse[0]

    def test_fits_low_rank_signal(self, small_dataset):
        result = run_als(small_dataset.split.train, small_dataset.split,
                         num_latent=5, n_iterations=15, regularization=0.05, seed=0)
        assert result.final_rmse < 2.5 * small_dataset.config.noise_std

    def test_result_shapes(self, tiny_dataset):
        result = run_als(tiny_dataset.split.train, tiny_dataset.split,
                         num_latent=4, n_iterations=3, seed=1)
        assert result.user_factors.shape == (40, 4)
        assert result.movie_factors.shape == (30, 4)
        assert len(result.test_rmse) == 3

    def test_predict(self, tiny_dataset):
        result = run_als(tiny_dataset.split.train, num_latent=3, n_iterations=2)
        predictions = result.predict([0, 1], [0, 1])
        assert predictions.shape == (2,)

    def test_without_split_uses_train_trace(self, tiny_dataset):
        result = run_als(tiny_dataset.split.train, None, num_latent=3, n_iterations=2)
        assert result.test_rmse == []
        assert result.final_rmse == result.train_rmse[-1]

    def test_deterministic(self, tiny_dataset):
        a = run_als(tiny_dataset.split.train, num_latent=3, n_iterations=2, seed=4)
        b = run_als(tiny_dataset.split.train, num_latent=3, n_iterations=2, seed=4)
        np.testing.assert_array_equal(a.user_factors, b.user_factors)

    def test_high_regularization_shrinks_factors(self, tiny_dataset):
        weak = run_als(tiny_dataset.split.train, num_latent=3, n_iterations=4,
                       regularization=0.01, seed=0)
        strong = run_als(tiny_dataset.split.train, num_latent=3, n_iterations=4,
                         regularization=10.0, seed=0)
        assert np.linalg.norm(strong.user_factors) < np.linalg.norm(weak.user_factors)

    def test_handles_empty_rows(self):
        from repro.sparse.csr import RatingMatrix
        # User 2 and movie 2 have no ratings at all.
        matrix = RatingMatrix.from_arrays(3, 3, [0, 1], [0, 1], [3.0, 4.0])
        result = run_als(matrix, num_latent=2, n_iterations=2, seed=0)
        np.testing.assert_array_equal(result.user_factors[2], np.zeros(2))

    def test_invalid_config(self):
        with pytest.raises(Exception):
            ALSConfig(num_latent=0)
        with pytest.raises(Exception):
            ALSConfig(regularization=-1.0)


class TestSGD:
    def test_training_error_decreases(self, small_dataset):
        result = run_sgd(small_dataset.split.train, small_dataset.split,
                         num_latent=5, n_epochs=10, learning_rate=0.02, seed=0)
        assert result.train_rmse[-1] < result.train_rmse[0]

    def test_result_shapes(self, tiny_dataset):
        result = run_sgd(tiny_dataset.split.train, tiny_dataset.split,
                         num_latent=4, n_epochs=3, seed=1)
        assert result.user_factors.shape == (40, 4)
        assert result.user_bias.shape == (40,)
        assert len(result.test_rmse) == 3

    def test_biases_capture_global_mean(self, tiny_dataset):
        result = run_sgd(tiny_dataset.split.train, num_latent=3, n_epochs=2, seed=0)
        assert result.global_bias == pytest.approx(
            tiny_dataset.split.train.mean_rating())

    def test_without_biases(self, tiny_dataset):
        result = run_sgd(tiny_dataset.split.train, num_latent=3, n_epochs=2,
                         use_biases=False, seed=0)
        assert result.global_bias == 0.0
        np.testing.assert_array_equal(result.user_bias, np.zeros(40))

    def test_deterministic(self, tiny_dataset):
        a = run_sgd(tiny_dataset.split.train, num_latent=3, n_epochs=2, seed=4)
        b = run_sgd(tiny_dataset.split.train, num_latent=3, n_epochs=2, seed=4)
        np.testing.assert_array_equal(a.user_factors, b.user_factors)

    def test_predict_shape(self, tiny_dataset):
        result = run_sgd(tiny_dataset.split.train, num_latent=3, n_epochs=1)
        assert result.predict([0, 1, 2], [0, 1, 2]).shape == (3,)

    def test_invalid_config(self):
        with pytest.raises(Exception):
            SGDConfig(learning_rate=0.0)
        with pytest.raises(Exception):
            SGDConfig(n_epochs=0)


class TestBaselinesVsBPMF:
    def test_bpmf_is_competitive_without_tuning(self, small_dataset):
        """The paper's motivation: BPMF reaches comparable accuracy with no
        regularisation tuning.  With a deliberately mis-tuned ALS lambda,
        BPMF should win; with a good lambda they should be comparable."""
        bpmf = GibbsSampler(BPMFConfig(num_latent=5, burn_in=8, n_samples=12,
                                       alpha=8.0)).run(
            small_dataset.split.train, small_dataset.split, seed=0)
        als_bad = run_als(small_dataset.split.train, small_dataset.split,
                          num_latent=5, n_iterations=15, regularization=20.0, seed=0)
        als_good = run_als(small_dataset.split.train, small_dataset.split,
                           num_latent=5, n_iterations=15, regularization=0.05, seed=0)
        assert bpmf.final_rmse < als_bad.final_rmse
        assert bpmf.final_rmse < 1.5 * als_good.final_rmse
