"""End-to-end request tracing across the serving fleet (repro.obs).

The contracts under test:

* the ``trace`` hello feature negotiates like binary encoding — old
  peers on either side keep working, and an untraced connection sends
  byte-identical pre-trace frames;
* a traced request yields a connected span tree across hops: client
  root → attempt → server admission (queue wait split out) → execute,
  and for mutations onward through the WAL —
  ``wal.commit`` → ``wal.append``/``wal.fsync`` → ``wal.ship`` →
  every follower's ``wal.follower_apply``;
* failover keeps the trace: a retried request stays one trace_id and
  grows a fresh attempt span per replica tried;
* a fused window is one parent span plus one ``fusion.waiter`` child
  per request, in response order;
* the stats/health frames keep their flat alias keys while the
  ``metrics`` frame serves the dotted registry view, and the ``trace``
  frame exports (and drains) the server's span buffer;
* a chaos fault firing inside a traced request annotates the live span.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.obs import Tracer
from repro.serving.chaos import FaultEvent, FaultInjector, FaultPlan
from repro.serving.net import ReplicaSet, ServingClient
from repro.serving.service import PredictionService

N_USERS, N_ITEMS, K = 40, 30, 4


@pytest.fixture(scope="module")
def snapshot():
    return make_bench_snapshot(N_USERS, N_ITEMS, K, seed=5)


@pytest.fixture()
def traced_pair(snapshot):
    """A 2-replica traced fleet plus its shared tracer."""
    tracer = Tracer(capacity=8192)
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2, tracer=tracer) as replicas:
        yield tracer, replicas


def _tree(spans, root):
    """The subtree under ``root`` (children found by parent_id)."""
    children = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    collected, stack = [], [root]
    while stack:
        node = stack.pop()
        collected.append(node)
        stack.extend(children.get(node["span_id"], []))
    return collected


def _roots(spans, name):
    return [span for span in spans
            if span["name"] == name and span["parent_id"] is None]


# ---------------------------------------------------------------------------
# feature negotiation (old peers keep working)
# ---------------------------------------------------------------------------

def test_traced_read_spans_both_sides_of_the_wire(traced_pair):
    tracer, replicas = traced_pair
    with ServingClient(replicas.addresses, tracer=tracer) as client:
        client.top_n(3, n=5)
        client.predict(3, 7)
    spans = tracer.spans()
    # Fused-by-default top_n dispatches through a fusion window...
    root = _roots(spans, "client.top_n")[-1]
    names = [span["name"] for span in _tree(spans, root)]
    for expected in ("client.attempt", "server.admit", "server.queue",
                     "fusion.window"):
        assert expected in names, f"missing {expected} in {names}"
    admits = [span for span in _tree(spans, root)
              if span["name"] == "server.admit"]
    assert admits[0]["attrs"]["kind"] == "top_n"
    # ...while every other kind runs under a server.execute span.
    predict_root = _roots(spans, "client.predict")[-1]
    predict_names = [span["name"] for span in _tree(spans, predict_root)]
    assert "server.execute" in predict_names


def test_untraced_client_against_traced_server_stays_untraced(traced_pair):
    tracer, replicas = traced_pair
    with ServingClient(replicas.addresses) as client:
        client.top_n(3, n=5)
    assert tracer.spans() == []


def test_traced_client_against_untraced_server_stays_silent(snapshot):
    tracer = Tracer()
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1) as replicas:
        with ServingClient(replicas.addresses, tracer=tracer) as client:
            client.top_n(3, n=5)
        reply = replicas.replicas[0].server  # server side recorded nothing
        assert reply.tracer is None
    spans = tracer.spans()
    # The client still records its own spans, but the feature did not
    # negotiate, so no trace context crossed the wire (nothing would
    # have admitted it anyway) and the request succeeded regardless.
    assert _roots(spans, "client.top_n")
    assert all(span["name"].startswith("client.") for span in spans)


# ---------------------------------------------------------------------------
# failover keeps the trace
# ---------------------------------------------------------------------------

def test_failover_retry_is_one_trace_with_fresh_attempt_spans(traced_pair):
    tracer, replicas = traced_pair
    addresses = list(replicas.addresses)
    replicas.kill(0)  # the ring tries address 0 first: guaranteed retry
    with ServingClient(addresses, tracer=tracer, cooldown=0.01,
                       backoff_max=0.05) as client:
        client.top_n(7, n=5)
        assert client.n_failovers >= 1
    spans = tracer.spans()
    root = _roots(spans, "client.top_n")[-1]
    tree = _tree(spans, root)
    assert {span["trace_id"] for span in tree} == {root["trace_id"]}, \
        "failover split the trace"
    attempts = sorted((span for span in tree
                       if span["name"] == "client.attempt"),
                      key=lambda span: span["attrs"]["attempt"])
    assert len(attempts) >= 2, "retry did not open a fresh attempt span"
    assert len({span["span_id"] for span in attempts}) == len(attempts)
    assert attempts[0]["attrs"]["replica"] != attempts[-1]["attrs"]["replica"]
    assert "error" in attempts[0]["attrs"], \
        "failed attempt lost its error annotation"


# ---------------------------------------------------------------------------
# fused windows: one parent, N children, response order
# ---------------------------------------------------------------------------

def test_fused_window_is_one_parent_with_children_in_response_order(
        snapshot):
    tracer = Tracer(capacity=8192)
    n_clients = 4
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, fuse_window_ms=100.0,
                    tracer=tracer) as replicas:
        barrier = threading.Barrier(n_clients)

        def one(user: int) -> None:
            with ServingClient(replicas.addresses,
                               tracer=tracer) as client:
                client.top_n(0, n=5)  # connect + prime outside the burst
                barrier.wait(timeout=30.0)
                client.top_n(user, n=5)

        threads = [threading.Thread(target=one, args=(user,))
                   for user in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not any(thread.is_alive() for thread in threads)

    spans = tracer.spans()
    children = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    windows = [span for span in spans if span["name"] == "fusion.window"]
    assert windows, "the concurrent burst never fused"
    for window in windows:
        waiters = [span for span in children.get(window["span_id"], [])
                   if span["name"] == "fusion.waiter"]
        # One child per fused request, indexed in response order.
        assert len(waiters) == window["attrs"]["users"]
        assert sorted(span["attrs"]["index"] for span in waiters) \
            == list(range(len(waiters)))
    deepest = max(len(children.get(window["span_id"], []))
                  for window in windows)
    assert deepest >= 2, "no window fused two concurrent requests"
    # Waiters from other requests' traces link back to their origin
    # instead of silently re-parenting into the window's trace.
    cross = [span for span in spans if span["name"] == "fusion.waiter"
             and "origin_trace_id" in span["attrs"]]
    for span in cross:
        assert span["attrs"]["origin_trace_id"] != span["trace_id"]
    # The batch execution itself traces under the window: the sharded
    # scorer's batch span attaches on the executor thread.
    batch_names = {span["name"]
                   for window in windows
                   for span in children.get(window["span_id"], [])}
    assert "fusion.waiter" in batch_names


# ---------------------------------------------------------------------------
# the WAL write chain
# ---------------------------------------------------------------------------

def test_write_trace_covers_append_fsync_ship_and_follower_apply(
        snapshot, tmp_path):
    tracer = Tracer(capacity=8192)
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=3, wal_dir=str(tmp_path / "wal"),
                    tracer=tracer) as replicas:
        # Pin the leader: the chain under test is the commit, not the
        # follower forward hop (tested separately below).
        with ServingClient(replicas.addresses[:1],
                           tracer=tracer) as client:
            client.fold_in(np.array([0, 1]), np.array([4.0, 5.0]))
    spans = tracer.spans()
    root = _roots(spans, "client.foldin")[-1]
    tree = _tree(spans, root)
    by_name = {}
    for span in tree:
        by_name.setdefault(span["name"], []).append(span)
    for name in ("client.attempt", "server.admit", "wal.commit",
                 "wal.append", "wal.fsync", "wal.ship",
                 "wal.follower_apply"):
        assert name in by_name, f"write chain is missing {name}"
    assert {span["trace_id"] for span in tree} == {root["trace_id"]}

    commit = by_name["wal.commit"][0]
    assert commit["attrs"]["seqno"] == 1
    append = by_name["wal.append"][0]
    assert append["attrs"]["seqno"] == 1
    assert append["parent_id"] == commit["span_id"]
    # The fsync happens inside the append: it nests one level deeper.
    assert by_name["wal.fsync"][0]["parent_id"] == append["span_id"]
    ship = by_name["wal.ship"][0]
    assert ship["parent_id"] == commit["span_id"]
    assert ship["attrs"]["followers"] == 2
    applies = by_name["wal.follower_apply"]
    assert len(applies) == 2, "one apply span per follower"
    for apply_span in applies:
        assert apply_span["attrs"]["applied"] == 1
        assert apply_span["attrs"]["replayed_seqno"] == [1]


def test_write_via_follower_traces_the_forward_hop(snapshot):
    tracer = Tracer(capacity=8192)
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2, tracer=tracer) as replicas:
        with ServingClient(replicas.addresses[1:],
                           tracer=tracer) as client:
            client.fold_in(np.array([2]), np.array([3.0]))
    spans = tracer.spans()
    root = _roots(spans, "client.foldin")[-1]
    names = [span["name"] for span in _tree(spans, root)]
    assert "wal.forward" in names, \
        "follower-received write lost its forward span"
    # Three admissions, one trace: the follower's front door, the
    # leader receiving the forward, and the follower again when the
    # committed record ships back.
    assert names.count("server.admit") == 3
    assert "wal.commit" in names


# ---------------------------------------------------------------------------
# export surfaces: stats aliases, metrics frame, trace frame
# ---------------------------------------------------------------------------

def test_stats_keeps_flat_aliases_and_metrics_serves_dotted_names(
        traced_pair):
    tracer, replicas = traced_pair
    with ServingClient(replicas.addresses, tracer=tracer) as client:
        client.fold_in(np.array([0]), np.array([4.0]))
        client.top_n(1, n=5)
        flat = client.stats()
        snapshot = client.metrics()
        health = client.health()
    # Old flat keys survive as aliases...
    assert flat["n_folded_in"] == 1
    # ...while the registry snapshot serves the same facts dotted, with
    # per-replica labels, plus the native latency histograms.
    assert any(key.startswith("serving.service.n_folded_in")
               for key in snapshot)
    assert any(key.startswith("serving.server.requests{replica=")
               for key in snapshot)
    queue_wait = next(value for key, value in snapshot.items()
                      if key.startswith("serving.server.queue_wait_ms"
                                        "{replica=0}"))
    assert queue_wait["count"] > 0
    assert set(queue_wait) >= {"count", "sum", "min", "max",
                               "p50", "p95", "p99"}
    assert any(key.startswith("wal.role") for key in snapshot)
    # The health frame carries the dotted view alongside its old shape.
    assert health["status"] == "ok"
    assert any(key.startswith("serving.server.")
               for key in health["metrics"])


def test_trace_frame_exports_limits_and_drains(traced_pair):
    tracer, replicas = traced_pair
    with ServingClient(replicas.addresses, tracer=tracer) as client:
        for user in range(5):
            client.top_n(user, n=3)
        full = client.spans()
        assert full["enabled"] is True
        assert full["tracer"]["finished"] >= 5
        assert len(full["spans"]) >= 5
        # Trace requests are themselves traced, so the buffer keeps
        # moving between calls: check the limit, not exact contents.
        limited = client.spans(limit=2)
        assert len(limited["spans"]) == 2
        drained = client.spans(drain=True)
        assert len(drained["spans"]) >= len(full["spans"])
        # The drain cleared the buffer; only spans of the drain request
        # itself and this export (on the shared tracer) may trickle in.
        leftover = client.spans()["spans"]
        assert len(leftover) <= 8
        assert all(span["name"] in
                   ("client.trace", "client.attempt", "server.admit",
                    "server.queue", "server.execute")
                   for span in leftover)


def test_trace_frame_reports_disabled_on_untraced_server(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1) as replicas:
        with ServingClient(replicas.addresses) as client:
            reply = client.spans()
    assert reply == {"enabled": False, "spans": []}


# ---------------------------------------------------------------------------
# chaos: fired faults annotate the live span
# ---------------------------------------------------------------------------

def test_fired_fault_annotates_the_active_attempt_span(traced_pair):
    tracer, replicas = traced_pair
    plan = FaultPlan(seed=0, events=[
        FaultEvent(site="net.send", step=2, action="delay", arg=0.001)])
    injector = FaultInjector(plan)
    with ServingClient(replicas.addresses, tracer=tracer,
                       fault_injector=injector) as client:
        for user in range(4):
            client.top_n(user, n=3)
    assert injector.log, "the scheduled fault never fired"
    annotated = [span for span in tracer.spans()
                 if "fault" in span["attrs"]]
    assert annotated, "the fired fault annotated no span"
    fired = annotated[0]["attrs"]["fault"][0]
    assert fired["site"] == "net.send"
    assert fired["action"] == "delay"
    assert annotated[0]["name"] == "client.attempt"
