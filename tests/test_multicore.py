"""Tests for the multicore sampler (correctness) and the Figure 3 sweep (shape)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.priors import BPMFConfig
from repro.multicore.sampler import MulticoreGibbsSampler, MulticoreOptions
from repro.multicore.sweep import default_schedulers, multicore_thread_sweep
from repro.multicore.tasks import phase_tasks, sweep_tasks


class TestMulticoreTasks:
    def test_phase_tasks_counts(self, chembl_tiny):
        ratings = chembl_tiny.ratings
        movie_tasks = phase_tasks(ratings, "movies", num_latent=8)
        user_tasks = phase_tasks(ratings, "users", num_latent=8)
        assert len(movie_tasks) == ratings.n_movies
        assert len(user_tasks) == ratings.n_users

    def test_task_ids_do_not_collide_across_phases(self, chembl_tiny):
        movie_tasks, user_tasks = sweep_tasks(chembl_tiny.ratings, num_latent=8)
        ids = {t.task_id for t in movie_tasks} | {t.task_id for t in user_tasks}
        assert len(ids) == len(movie_tasks) + len(user_tasks)

    def test_invalid_phase(self, chembl_tiny):
        with pytest.raises(ValueError):
            phase_tasks(chembl_tiny.ratings, "neither", num_latent=8)

    def test_task_durations_follow_degrees(self, chembl_tiny):
        ratings = chembl_tiny.ratings
        tasks = phase_tasks(ratings, "movies", num_latent=8)
        degrees = ratings.movie_degrees()
        heaviest = int(np.argmax(degrees))
        lightest = int(np.argmin(degrees))
        assert tasks[heaviest].duration > tasks[lightest].duration


class TestMulticoreSamplerCorrectness:
    def test_bitwise_parity_with_sequential(self, tiny_dataset, tiny_config):
        """The multicore sampler must reproduce the sequential chain exactly."""
        seq = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                            tiny_dataset.split, seed=9)
        multi = MulticoreGibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                                       tiny_dataset.split, seed=9)
        np.testing.assert_allclose(multi.state.user_factors, seq.state.user_factors)
        np.testing.assert_allclose(multi.state.movie_factors, seq.state.movie_factors)
        assert multi.final_rmse == pytest.approx(seq.final_rmse)

    def test_thread_count_does_not_change_results(self, tiny_dataset, tiny_config):
        single = MulticoreGibbsSampler(
            tiny_config, MulticoreOptions(n_threads=1)).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=3)
        threaded = MulticoreGibbsSampler(
            tiny_config, MulticoreOptions(n_threads=4, chunk_size=5)).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=3)
        np.testing.assert_allclose(threaded.state.user_factors,
                                   single.state.user_factors)

    def test_shared_engine_bitwise_parity_with_sequential(self, tiny_dataset,
                                                          tiny_config):
        """engine="shared" reproduces the sequential chain bit for bit,
        and the run tears its worker pool down on exit."""
        seq = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                            tiny_dataset.split, seed=9)
        sampler = MulticoreGibbsSampler(
            tiny_config, MulticoreOptions(engine="shared", n_threads=2))
        shared = sampler.run(tiny_dataset.split.train, tiny_dataset.split,
                             seed=9)
        np.testing.assert_array_equal(shared.state.user_factors,
                                      seq.state.user_factors)
        np.testing.assert_array_equal(shared.state.movie_factors,
                                      seq.state.movie_factors)
        assert shared.final_rmse == pytest.approx(seq.final_rmse)
        assert not sampler._engine.pool_running  # closed by run()'s finally

    def test_trace_lengths(self, tiny_dataset, tiny_config):
        result = MulticoreGibbsSampler(tiny_config).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        assert len(result.rmse_burn_in) == tiny_config.burn_in
        assert len(result.rmse_running_mean) == tiny_config.n_samples

    def test_accuracy_on_low_rank_signal(self, small_dataset):
        config = BPMFConfig(num_latent=5, burn_in=6, n_samples=10, alpha=8.0)
        result = MulticoreGibbsSampler(config, MulticoreOptions(n_threads=2)).run(
            small_dataset.split.train, small_dataset.split, seed=1)
        assert result.final_rmse < 2.5 * small_dataset.config.noise_std

    def test_mismatched_state_rejected(self, tiny_dataset, small_dataset, tiny_config):
        from repro.core.state import initialize_state
        state = initialize_state(small_dataset.split.train, tiny_config, 0)
        with pytest.raises(Exception):
            MulticoreGibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                                   tiny_dataset.split, seed=0,
                                                   state=state)


class TestFigure3Sweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        # A mid-size ChEMBL-like workload: large enough for the heavy-tailed
        # target degrees to create the load imbalance Figure 3 is about.
        from repro.datasets import make_chembl_like
        ratings = make_chembl_like(scale=100.0, seed=11).ratings
        return multicore_thread_sweep(ratings, num_latent=32,
                                      thread_counts=(1, 2, 4, 8, 16))

    def test_all_three_execution_models_present(self, sweep):
        assert set(sweep.throughput) == {"TBB", "OpenMP", "GraphLab"}

    def test_throughput_scales_with_threads(self, sweep):
        """Figure 3: every implementation scales with the core count."""
        for name, series in sweep.throughput.items():
            assert series[-1] > 2.0 * series[0], name

    def test_work_stealing_beats_graph_engine_everywhere(self, sweep):
        """Figure 3: the hand-tuned versions clearly outperform GraphLab."""
        for tbb, graphlab in zip(sweep.throughput["TBB"],
                                 sweep.throughput["GraphLab"]):
            assert tbb > 2.0 * graphlab

    def test_work_stealing_beats_static_at_high_thread_count(self, sweep):
        """Figure 3: TBB > OpenMP once load imbalance starts to matter."""
        assert sweep.throughput["TBB"][-1] > sweep.throughput["OpenMP"][-1]

    def test_speedup_series_normalised(self, sweep):
        for name in sweep.throughput:
            speedup = sweep.speedup(name)
            assert speedup[0] == pytest.approx(1.0)
            assert all(later >= 0.9 for later in speedup)

    def test_table_rendering(self, sweep):
        table = sweep.to_table()
        text = table.render()
        assert "threads" in text
        assert "TBB" in text
        assert len(table.rows) == 5

    def test_details_kept_on_request(self, chembl_tiny):
        result = multicore_thread_sweep(chembl_tiny.ratings, num_latent=8,
                                        thread_counts=(1, 2), keep_details=True)
        assert len(result.schedule_details["TBB"]) == 4  # 2 phases x 2 counts

    def test_default_schedulers_factory(self):
        schedulers = default_schedulers()
        assert set(schedulers) == {"TBB", "OpenMP", "GraphLab"}

    def test_invalid_thread_count(self, chembl_tiny):
        with pytest.raises(Exception):
            multicore_thread_sweep(chembl_tiny.ratings, thread_counts=(0, 2))
