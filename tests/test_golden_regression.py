"""Golden regression: a fixed-seed 20-sweep run must keep its RMSE trajectory.

The golden values below were produced by the reference (per-item) engine at
the recorded seed.  Two layers of assertion:

* an *exact* layer (tight tolerance) that pins the sampled chain itself —
  any change to the hot path's arithmetic, random-stream consumption or
  update order shows up here immediately;
* a *statistical* layer (loose band) that survives floating-point
  reordering but still catches silently changed statistics (wrong prior,
  dropped ratings, broken noise indexing).

A future hot-path refactor that intentionally changes floating-point
details (and therefore the exact chain) should re-record the golden
trajectory with ``python -m tests.test_golden_regression`` semantics —
rerun the recipe in ``_run()`` — and justify the change in its PR; the
statistical band should survive any correct refactor unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset

SEED = 2024
DATASET = SyntheticConfig(n_users=80, n_movies=60, rank=4, density=0.25,
                          noise_std=0.3, test_fraction=0.2, seed=321)
CONFIG = dict(num_latent=8, burn_in=5, n_samples=15, alpha=4.0)

#: Golden trajectories recorded with engine="reference" at the seed above.
GOLDEN_BURN_IN = np.array([
    0.7118454020, 0.7001605852, 0.7499116034, 0.6800600680, 0.6834076630,
])
GOLDEN_RUNNING_MEAN = np.array([
    0.6749644589, 0.6342491495, 0.6160116379, 0.6189568682, 0.6160862523,
    0.6053203634, 0.6037503919, 0.5958084709, 0.5954318364, 0.5957950538,
    0.5978225044, 0.5909415635, 0.5891169625, 0.5848709809, 0.5771773674,
])

#: Exact layer: pins the chain (same platform/BLAS reproduces ~1e-12).
EXACT_ATOL = 1e-6
#: Statistical layer: survives fp reordering, catches changed statistics.
BAND_ATOL = 0.05


@pytest.fixture(scope="module")
def dataset():
    return make_low_rank_dataset(DATASET)


def _run(dataset, engine: str):
    sampler = GibbsSampler(BPMFConfig(**CONFIG), SamplerOptions(engine=engine))
    return sampler.run(dataset.split.train, dataset.split, seed=SEED)


@pytest.mark.parametrize("engine", ["reference", "batched"])
def test_rmse_trajectory_matches_golden(dataset, engine):
    """Both engines reproduce the recorded 20-sweep RMSE trajectory."""
    result = _run(dataset, engine)
    np.testing.assert_allclose(result.rmse_burn_in, GOLDEN_BURN_IN,
                               atol=EXACT_ATOL)
    np.testing.assert_allclose(result.rmse_running_mean, GOLDEN_RUNNING_MEAN,
                               atol=EXACT_ATOL)


@pytest.mark.parametrize("engine", ["reference", "batched"])
def test_rmse_trajectory_statistics(dataset, engine):
    """The loose band that must survive any numerically-correct refactor."""
    result = _run(dataset, engine)
    assert len(result.rmse_burn_in) == CONFIG["burn_in"]
    assert len(result.rmse_running_mean) == CONFIG["n_samples"]
    np.testing.assert_allclose(result.rmse_running_mean, GOLDEN_RUNNING_MEAN,
                               atol=BAND_ATOL)
    # The posterior mean keeps improving overall and beats burn-in.
    assert result.final_rmse < result.rmse_running_mean[0]
    assert result.final_rmse < min(GOLDEN_BURN_IN)
    # Recovers the planted low-rank signal to within ~2x the noise floor.
    assert result.final_rmse < 2.0 * DATASET.noise_std


def test_socket_world_reproduces_the_golden_chain(dataset):
    """A 4-rank socket-world (real TCP links) run of the distributed
    sampler lands on the very same golden chain — and bit-identically on
    the orchestrated ``SimCommWorld`` chain, exact ties included."""
    from repro.distributed.sampler import (
        DistributedGibbsSampler,
        DistributedOptions,
    )
    from repro.distributed.spmd import run_local_socket_world

    opts = dict(n_ranks=4, hyper_mode="gather", buffer_capacity=16)
    reference, _ = DistributedGibbsSampler(
        BPMFConfig(**CONFIG), DistributedOptions(**opts)).run(
        dataset.split.train, dataset.split, seed=SEED)
    outcomes = run_local_socket_world(
        lambda: DistributedGibbsSampler(BPMFConfig(**CONFIG),
                                        DistributedOptions(**opts)),
        4, dataset.split.train, dataset.split, seed=SEED)
    result, _info = outcomes[0]
    np.testing.assert_allclose(result.rmse_burn_in, GOLDEN_BURN_IN,
                               atol=EXACT_ATOL)
    np.testing.assert_allclose(result.rmse_running_mean, GOLDEN_RUNNING_MEAN,
                               atol=EXACT_ATOL)
    # Bitwise against the simulated world, not just within tolerance.
    assert result.rmse_running_mean == reference.rmse_running_mean
    assert np.array_equal(result.state.user_factors,
                          reference.state.user_factors)
    assert np.array_equal(result.state.movie_factors,
                          reference.state.movie_factors)
    assert np.array_equal(result.predictions, reference.predictions)


def test_engines_agree_on_the_full_golden_run(dataset):
    """20-sweep cross-engine agreement on the same seed (chain-level)."""
    ref = _run(dataset, "reference")
    bat = _run(dataset, "batched")
    np.testing.assert_allclose(bat.rmse_running_mean, ref.rmse_running_mean,
                               atol=EXACT_ATOL)
    np.testing.assert_allclose(bat.predictions, ref.predictions, atol=1e-4)
