"""The replicated mutation log end to end: exactly-once, convergence.

What is pinned here (the PR's acceptance bar):

* a duplicate-delivered shipment applies exactly once (the replayer's
  high-water mark), and a duplicate client retry gets the *original*
  ack back (the leader's write_id dedup — including across a leader
  restart, rebuilt from the log);
* acked writes are immediately readable on every live replica
  (read-your-writes across the fleet), with bit-identical state
  digests;
* killing the write leader mid-storm loses **zero acked writes**: after
  a restart the fleet converges to the same bytes as a fresh service
  replaying the log from scratch;
* a follower that missed shipments (cooldown, restart) closes the gap
  by seqno-range catch-up.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.serving.net import NetError, ReplicaSet, ServingClient
from repro.serving.service import PredictionService
from repro.serving.wal import (
    LeaderCoordinator,
    MutationReplayer,
    WalGapError,
    WalRecord,
    WriteAheadLog,
    mutation_record_payload,
)

N_USERS, N_ITEMS, K = 40, 29, 4


@pytest.fixture(scope="module")
def snapshot():
    return make_bench_snapshot(N_USERS, N_ITEMS, K, seed=9)


def _service(snapshot) -> PredictionService:
    return PredictionService(snapshot)


# -- coordinator-level exactly-once -----------------------------------------


def test_duplicate_client_retry_returns_the_original_ack(snapshot):
    service = _service(snapshot)
    leader = LeaderCoordinator(service, WriteAheadLog())
    first = leader.handle_mutation(
        "foldin", {"items": [0, 1], "values": [4.0, 3.0],
                   "write_id": "w-1"})
    again = leader.handle_mutation(
        "foldin", {"items": [0, 1], "values": [4.0, 3.0],
                   "write_id": "w-1"})
    assert again == first
    assert service.stats()["n_folded_in"] == 1  # applied exactly once
    assert leader.stats()["dedup_hits"] == 1
    assert leader.stats()["high_seqno"] == 1
    leader.close()


def test_write_dedup_survives_a_leader_restart(snapshot, tmp_path):
    payload = {"items": [0, 1], "values": [4.0, 3.0], "write_id": "w-9"}
    leader = LeaderCoordinator(_service(snapshot), WriteAheadLog(tmp_path))
    first = leader.handle_mutation("foldin", payload)
    leader.close()

    service = _service(snapshot)
    revived = LeaderCoordinator(service, WriteAheadLog(tmp_path))
    assert revived.stats()["recovered"] == 1
    again = revived.handle_mutation("foldin", dict(payload))
    assert again == first  # the retry spans the crash, still exactly-once
    assert service.stats()["n_folded_in"] == 1
    revived.close()


def test_replayer_skips_duplicates_and_refuses_gaps(snapshot):
    service = _service(snapshot)
    source = _service(snapshot)
    records = []
    for seqno, (items, values) in enumerate(
            [([0, 1], [4.0, 3.0]), ([2], [5.0])], start=1):
        payload = mutation_record_payload(
            source, "foldin", {"items": items, "values": values})
        source.fold_in(np.array(items), np.array(values))
        records.append(WalRecord(seqno=seqno, payload=payload))

    replayer = MutationReplayer(service)
    assert replayer.apply(records[0]) is not None
    assert replayer.apply(records[0]) is None  # duplicate: counted no-op
    assert replayer.stats()["duplicates_skipped"] == 1
    with pytest.raises(WalGapError, match="expecting 2"):
        replayer.apply(WalRecord(seqno=3, payload=records[1].payload))
    assert replayer.apply(records[1]) is not None
    assert service.stats()["n_folded_in"] == 2
    assert str(service.state_digest()) == str(source.state_digest())


# -- fleet-level behaviour ---------------------------------------------------


def _digests(replicas) -> set:
    digests = set()
    for address in replicas.addresses:
        with ServingClient([address]) as pinned:
            digests.add(pinned.health(digest=True)["digest"])
    return digests


def test_acked_writes_are_read_your_writes_fleet_wide(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=3) as replicas:
        with ServingClient(replicas.addresses) as client:
            cold = client.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            client.rate(cold, np.array([2]), np.array([3.5]))
            assert client.last_seqno == 2
        for address in replicas.addresses:
            with ServingClient([address]) as pinned:
                assert len(pinned.top_n(cold, n=3)) == 3
                assert pinned.stats()["n_folded_in"] == 1
        assert len(_digests(replicas)) == 1
        roles = [stats["role"] for stats in replicas.wal_stats()]
        assert roles == ["leader", "follower", "follower"]


def test_mutations_retry_exactly_once_across_a_dead_follower(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=3) as replicas:
        # Ring ordered follower-1 first so the mutation's first attempt
        # lands there; kill it once the connection is cached.
        addresses = [replicas.addresses[1], replicas.addresses[0],
                     replicas.addresses[2]]
        with ServingClient(addresses, cooldown=0.05) as client:
            for _ in range(len(addresses)):  # wrap the ring back to the
                assert len(client.top_n(0, n=3)) == 3  # dead-to-be follower
            replicas.kill(1)
            # The retryable write fails over off the dead follower and
            # applies exactly once.
            cold = client.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            assert cold == N_USERS
            assert client.n_failovers >= 1
        leader_stats = replicas.wal_stats()[0]
        assert leader_stats["high_seqno"] == 1
        assert replicas.replicas[0].service.stats()["n_folded_in"] == 1
        assert replicas.replicas[2].service.stats()["n_folded_in"] == 1


def test_restarted_follower_catches_up_by_seqno_range(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=3) as replicas:
        with ServingClient(replicas.addresses) as client:
            client.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
        replicas.kill(2)
        with ServingClient(replicas.addresses) as client:
            cold = client.fold_in(np.array([2]), np.array([5.0]))
            client.rate(cold, np.array([3]), np.array([1.5]))
        replicas.restart(2)
        stats = replicas.wal_stats()[2]
        assert stats["applied_seqno"] == 3
        assert stats["catchup_batches"] >= 1
        assert len(_digests(replicas)) == 1


def test_leader_kill_mid_storm_loses_no_acked_write(snapshot, tmp_path):
    wal_dir = tmp_path / "log"
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=3, wal_dir=str(wal_dir)) as replicas:
        acked = []
        errors = []
        lock = threading.Lock()

        def storm(worker: int) -> None:
            with ServingClient(replicas.addresses,
                               cooldown=0.05) as client:
                user = client.fold_in(np.array([worker]),
                                      np.array([4.0]))
                deadline = time.monotonic() + 60.0
                for i in range(30):
                    while True:
                        try:
                            client.rate(user, np.array([i % N_ITEMS]),
                                        np.array([float(1 + i % 5)]))
                            break
                        except NetError as error:
                            with lock:
                                errors.append(error)
                            if time.monotonic() > deadline:
                                return
                            time.sleep(0.02)
                    with lock:
                        acked.append(client.last_seqno)

        threads = [threading.Thread(target=storm, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            with lock:
                if len(acked) >= 10:
                    break
            time.sleep(0.01)
        replicas.kill(0)
        time.sleep(0.2)
        replicas.restart(0)
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(thread.is_alive() for thread in threads)
        assert len(acked) == 2 * 30

        # Post-restart write succeeds and the fleet converges.
        with ServingClient(replicas.addresses) as client:
            cold = client.fold_in(np.array([5]), np.array([2.0]))
            client.rate(cold, np.array([0]), np.array([1.0]))
            final_seqno = client.last_seqno
        assert final_seqno >= max(acked)
        digests = _digests(replicas)
        assert len(digests) == 1, "fleet diverged across the leader kill"
        fleet_digest = digests.pop()

    # Ground truth: a fresh service replaying the recovered log lands on
    # the same bytes — every acked write survived the crash.
    replayed = PredictionService(snapshot)
    with WriteAheadLog(wal_dir) as log:
        replayer = MutationReplayer(replayed)
        replayer.apply_all(log.records())
    assert replayer.applied_seqno == final_seqno
    assert str(replayed.state_digest()) == fleet_digest


def test_wal_counters_surface_in_health_and_stats(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        with ServingClient(replicas.addresses) as client:
            client.fold_in(np.array([0]), np.array([4.0]))
            health = client.health()
            stats = client.stats()
        assert health["wal"]["role"] in ("leader", "follower")
        assert health["wal"]["applied_seqno"] == 1
        assert stats["wal"]["applied_seqno"] == 1
        leader = replicas.wal_stats()[0]
        assert leader["appended"] == 1
        assert leader["shipped"] == 1
        assert leader["duplicates_skipped"] == 0
