"""Tests for the high-level BPMF estimator facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.model import BPMF
from repro.core.priors import BPMFConfig
from repro.core.sideinfo import SideInfo
from repro.datasets import make_movielens_like
from repro.utils.validation import ValidationError


class TestFitPredict:
    def test_basic_fit_and_predict(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=2, n_samples=4, alpha=4.0).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        assert model.is_fitted
        predictions = model.predict(tiny_dataset.split.test_users,
                                    tiny_dataset.split.test_movies)
        assert predictions.shape == tiny_dataset.split.test_values.shape
        assert np.isfinite(predictions).all()
        assert model.test_rmse > 0

    def test_unfitted_model_raises(self, tiny_dataset):
        model = BPMF(num_latent=3)
        assert not model.is_fitted
        with pytest.raises(ValidationError):
            model.predict([0], [0])
        with pytest.raises(ValidationError):
            _ = model.state
        with pytest.raises(ValidationError):
            model.recommend(0)

    def test_centering_restores_scale(self):
        data = make_movielens_like(scale=1500, seed=4)
        model = BPMF(num_latent=4, burn_in=2, n_samples=4, alpha=2.0,
                     center=True).fit(data.split.train, data.split, seed=0)
        predictions = model.predict(data.split.test_users, data.split.test_movies)
        # Star-scale data: centred sampling plus mean restoration keeps the
        # predictions on the original scale.
        assert 1.0 < predictions.mean() < 5.5
        assert model.offset == pytest.approx(data.split.train.mean_rating())

    def test_centering_beats_uncentered_on_shifted_data(self):
        data = make_movielens_like(scale=1500, seed=4)
        kwargs = dict(num_latent=4, burn_in=3, n_samples=6, alpha=2.0)
        centred = BPMF(center=True, **kwargs).fit(data.split.train, data.split, seed=0)
        uncentred = BPMF(center=False, **kwargs).fit(data.split.train, data.split,
                                                     seed=0)
        centred_rmse = np.sqrt(np.mean((centred.predict(
            data.split.test_users, data.split.test_movies)
            - data.split.test_values) ** 2))
        uncentred_rmse = np.sqrt(np.mean((uncentred.predict(
            data.split.test_users, data.split.test_movies)
            - data.split.test_values) ** 2))
        assert centred_rmse < uncentred_rmse

    def test_clipping(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=1, n_samples=2, clip=(0.0, 1.0)).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        predictions = model.predict(tiny_dataset.split.test_users,
                                    tiny_dataset.split.test_movies)
        assert predictions.min() >= 0.0 and predictions.max() <= 1.0

    def test_predict_matrix_shape(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=1, n_samples=2).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        block = model.predict_matrix([0, 1, 2], [0, 5])
        assert block.shape == (3, 2)
        np.testing.assert_allclose(block[1, 1], model.predict([1], [5])[0])

    def test_sequential_backend_matches_raw_sampler(self, tiny_dataset, tiny_config):
        """center=False, sequential backend == using GibbsSampler directly."""
        model = BPMF(num_latent=tiny_config.num_latent, alpha=tiny_config.alpha,
                     burn_in=tiny_config.burn_in, n_samples=tiny_config.n_samples,
                     center=False).fit(tiny_dataset.split.train, tiny_dataset.split,
                                       seed=9)
        raw = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                            tiny_dataset.split, seed=9)
        np.testing.assert_allclose(model.state.user_factors, raw.state.user_factors)


class TestBackends:
    @pytest.mark.parametrize("backend,kwargs", [
        ("multicore", {"n_threads": 2}),
        ("distributed", {"n_ranks": 3}),
    ])
    def test_parallel_backends_match_sequential(self, tiny_dataset, backend, kwargs):
        common = dict(num_latent=3, burn_in=2, n_samples=4, alpha=4.0, center=True)
        sequential = BPMF(backend="sequential", **common).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=1)
        parallel = BPMF(backend=backend, **common, **kwargs).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=1)
        # The distributed backend's default hyper_mode is "stats", so allow a
        # tiny numerical difference; multicore must be exact.
        tolerance = 0.0 if backend == "multicore" else 0.05
        assert abs(parallel.test_rmse - sequential.test_rmse) <= tolerance + 1e-12

    def test_sideinfo_backend(self, rng, tiny_dataset):
        features = rng.normal(size=(tiny_dataset.ratings.n_movies, 3))
        model = BPMF(num_latent=3, burn_in=2, n_samples=3, backend="sideinfo",
                     movie_side=SideInfo(features)).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        assert model.is_fitted

    def test_sideinfo_backend_requires_features(self):
        with pytest.raises(ValidationError):
            BPMF(backend="sideinfo")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError):
            BPMF(backend="gpu")


class TestRecommend:
    def test_recommend_excludes_training_items(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=1, n_samples=2).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        recommendation = model.recommend(user=0, n=5)
        seen, _ = tiny_dataset.split.train.user_ratings(0)
        assert not set(recommendation.items.tolist()) & set(seen.tolist())

    def test_recommend_with_clip(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=1, n_samples=2, clip=(0.5, 5.0)).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        recommendation = model.recommend(user=1, n=3)
        assert recommendation.scores.max() <= 5.0
        assert recommendation.scores.min() >= 0.5

    def test_recommend_can_include_rated(self, tiny_dataset):
        model = BPMF(num_latent=3, burn_in=1, n_samples=2).fit(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        everything = model.recommend(user=0, n=30, exclude_rated=False)
        assert len(everything) == 30
