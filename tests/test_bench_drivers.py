"""Tests for the benchmark harness drivers (small parameterisations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.accuracy import run_accuracy_parity
from repro.bench.fig2_update_methods import run_fig2
from repro.bench.fig3_multicore import run_fig3
from repro.bench.fig4_strong_scaling import bluegene_like_config, run_fig4
from repro.bench.fig5_overlap import run_fig5
from repro.bench.runner import available_experiments, run_experiment
from repro.bench.speedup_summary import run_speedup_summary
from repro.core.priors import BPMFConfig
from repro.datasets import make_scaling_workload
from repro.distributed.scaling import ScalingConfig
from repro.mpi.network import ClusterSpec
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def small_scaling_workload():
    return make_scaling_workload(n_users=4000, n_movies=800, n_ratings=80_000, seed=9)


class TestFig2Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(degrees=(1, 8, 64, 512, 2048), repeats=1,
                        max_rank_one_degree=512)

    def test_series_lengths(self, result):
        assert len(result.degrees) == 5
        for series in list(result.measured.values()) + list(result.modelled.values()):
            assert len(series) == 5

    def test_modelled_crossovers_reproduce_figure2_shape(self, result):
        assert result.crossover("modelled", "rank-one update",
                                "serial Cholesky") <= 512
        crossover = result.crossover("modelled", "serial Cholesky",
                                     "parallel Cholesky")
        assert crossover is not None and crossover >= 512

    def test_measured_rank_one_capped(self, result):
        assert np.isnan(result.measured["rank-one update"][-1])

    def test_tables_render(self, result):
        assert "#ratings" in result.to_table("modelled").render()
        assert "rank-one" in result.to_table("measured").render()


class TestFig3Driver:
    def test_shape_properties(self):
        result = run_fig3(chembl_scale=200, num_latent=32, thread_counts=(1, 4, 16))
        assert result.thread_counts == [1, 4, 16]
        assert result.speedup("TBB")[0] == pytest.approx(1.0)
        assert result.throughput["TBB"][-1] > result.throughput["GraphLab"][-1]
        assert "threads" in result.to_table().render()


class TestFig4AndFig5Drivers:
    @pytest.fixture(scope="class")
    def config(self):
        return ScalingConfig(
            num_latent=32,
            cluster=ClusterSpec(rack_size=4, cache_bytes=1024 * 1024),
        )

    def test_fig4_shape(self, small_scaling_workload, config):
        result = run_fig4(ratings=small_scaling_workload,
                          node_counts=(1, 2, 4, 8, 16), config=config)
        assert result.node_counts == [1, 2, 4, 8, 16]
        throughput = result.throughput_series()
        assert throughput[2] > throughput[0]
        efficiency = result.efficiency_series()
        assert efficiency[0] == pytest.approx(1.0)
        assert efficiency[-1] < efficiency[1]
        assert "parallel efficiency" in result.to_table().render()

    def test_fig5_fractions(self, small_scaling_workload, config):
        result = run_fig5(ratings=small_scaling_workload, node_counts=(1, 4, 16),
                          config=config)
        fractions = result.fractions()
        assert set(fractions) == {"compute", "both", "communicate"}
        assert fractions["compute"][0] == pytest.approx(1.0)
        assert fractions["communicate"][-1] > fractions["communicate"][0]
        for i in range(3):
            assert (fractions["compute"][i] + fractions["both"][i]
                    + fractions["communicate"][i]) == pytest.approx(1.0)

    def test_bluegene_like_config_values(self):
        config = bluegene_like_config(num_latent=48, rack_size=16)
        assert config.cluster.rack_size == 16
        assert config.num_latent == 48
        assert config.network.inter_bandwidth < config.network.intra_bandwidth


class TestAccuracyDriver:
    def test_parity_summary(self, small_dataset):
        config = BPMFConfig(num_latent=4, burn_in=3, n_samples=5, alpha=4.0)
        result = run_accuracy_parity(small_dataset.split.train, small_dataset.split,
                                     config=config, n_ranks=3, seed=1)
        assert set(result.final_rmse) == {
            "sequential", "multicore", "distributed (gather)", "distributed (stats)"}
        assert result.exact_match["multicore"]
        assert result.exact_match["distributed (gather)"]
        assert result.max_rmse_gap() < 0.1
        assert "implementation" in result.to_table().render()


class TestSpeedupDriver:
    def test_speedup_ladder(self):
        result = run_speedup_summary(chembl_scale=300, n_iterations=10,
                                     distributed_nodes=32)
        speedups = result.speedups()
        baseline = "single-core (initial implementation)"
        assert speedups[baseline] == pytest.approx(1.0)
        multicore = speedups["single node, multicore (TBB-like)"]
        distributed = speedups["distributed (32 nodes)"]
        assert multicore > 10.0
        assert distributed > multicore
        assert "speed-up" in result.to_table().render()


class TestRunner:
    def test_available_experiments(self):
        names = available_experiments()
        assert set(names) >= {"fig2", "fig3", "fig4", "fig5", "accuracy",
                              "speedup", "engines", "serving"}

    def test_serving_ladder_quick(self):
        outcome = run_experiment("serving", quick=True)
        payload = outcome.result.to_json_payload()
        assert payload["benchmark"] == "serving-ladder"
        backends = {row["backend"] for row in payload["results"]}
        assert backends == {"single", "sharded", "tcp-json", "tcp-bin",
                            "tcp-bin-traced", "tcp-bin-pipelined",
                            "tcp-fused", "tcp-wal-mem", "tcp-wal-fsync1"}
        assert all(row["qps"] > 0 for row in payload["results"])
        assert payload["workload"]["transports"] == ["inproc", "tcp"]
        assert "Serving ladder" in outcome.render()

    def test_serving_ladder_transport_restriction(self):
        outcome = run_experiment("serving", quick=True,
                                 transports=("inproc",))
        backends = {row.backend for row in outcome.result.rows}
        assert backends == {"single", "sharded"}
        outcome = run_experiment("serving", quick=True, transports=("tcp",))
        backends = {row.backend for row in outcome.result.rows}
        assert backends == {"single", "tcp-json", "tcp-bin",
                            "tcp-bin-traced", "tcp-bin-pipelined",
                            "tcp-fused", "tcp-wal-mem", "tcp-wal-fsync1"}

    def test_run_experiment_by_name(self):
        outcome = run_experiment("fig2", degrees=(1, 64, 2048), repeats=1)
        assert outcome.name == "fig2"
        assert outcome.seconds >= 0.0
        assert "Figure 2" in outcome.render()

    def test_unknown_experiment(self):
        with pytest.raises(ValidationError):
            run_experiment("fig99")
