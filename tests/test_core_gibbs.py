"""Unit and convergence tests for the sequential Gibbs sampler and its helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.metrics import coverage_interval, mae, rmse
from repro.core.predict import PosteriorPredictor, predict_ratings
from repro.core.priors import BPMFConfig
from repro.core.state import BPMFState, initialize_state
from repro.core.updates import UpdateMethod
from repro.datasets.synthetic import make_low_rank_dataset
from repro.utils.validation import ValidationError


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_rmse_known_value(self):
        assert rmse([1.0, 2.0], [1.0, 4.0]) == pytest.approx(np.sqrt(2.0))

    def test_mae_known_value(self):
        assert mae([1.0, 2.0], [2.0, 4.0]) == pytest.approx(1.5)

    def test_perfect_prediction(self):
        assert rmse([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0
        assert mae([1.0], [1.0]) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            rmse([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            rmse([], [])

    def test_coverage_interval_full_coverage(self):
        samples = np.random.default_rng(0).normal(size=(500, 20))
        actual = np.zeros(20)
        assert coverage_interval(samples, actual, level=0.99) >= 0.9

    def test_coverage_interval_no_coverage(self):
        samples = np.random.default_rng(0).normal(size=(100, 10))
        actual = np.full(10, 100.0)
        assert coverage_interval(samples, actual) == 0.0

    def test_coverage_validation(self):
        with pytest.raises(ValidationError):
            coverage_interval(np.zeros((5, 3)), np.zeros(4))
        with pytest.raises(ValidationError):
            coverage_interval(np.zeros((5, 3)), np.zeros(3), level=1.5)


# ---------------------------------------------------------------------------
# state
# ---------------------------------------------------------------------------

class TestState:
    def test_initialize_shapes(self, tiny_dataset, tiny_config, rng):
        state = initialize_state(tiny_dataset.split.train, tiny_config, rng)
        assert state.user_factors.shape == (40, tiny_config.num_latent)
        assert state.movie_factors.shape == (30, tiny_config.num_latent)
        assert state.iteration == 0

    def test_initialize_deterministic(self, tiny_dataset, tiny_config):
        a = initialize_state(tiny_dataset.split.train, tiny_config, 3)
        b = initialize_state(tiny_dataset.split.train, tiny_config, 3)
        np.testing.assert_array_equal(a.user_factors, b.user_factors)

    def test_initial_scale_independent_of_k(self, tiny_dataset):
        small_k = initialize_state(tiny_dataset.split.train,
                                   BPMFConfig(num_latent=2), 0)
        large_k = initialize_state(tiny_dataset.split.train,
                                   BPMFConfig(num_latent=32), 0)
        pred_small = small_k.predict(np.arange(10), np.arange(10))
        pred_large = large_k.predict(np.arange(10), np.arange(10))
        assert np.abs(pred_large).mean() < 10 * max(np.abs(pred_small).mean(), 0.1)

    def test_predict_shape_and_values(self, rng):
        state = BPMFState(
            user_factors=np.array([[1.0, 0.0], [0.0, 2.0]]),
            movie_factors=np.array([[3.0, 1.0], [1.0, 1.0]]),
            user_prior=None, movie_prior=None)
        predictions = state.predict([0, 1], [0, 1])
        np.testing.assert_allclose(predictions, [3.0, 2.0])

    def test_copy_is_independent(self, tiny_dataset, tiny_config, rng):
        state = initialize_state(tiny_dataset.split.train, tiny_config, rng)
        clone = state.copy()
        clone.user_factors[0, 0] = 99.0
        assert state.user_factors[0, 0] != 99.0


# ---------------------------------------------------------------------------
# predictor
# ---------------------------------------------------------------------------

class TestPosteriorPredictor:
    def test_running_mean(self, tiny_dataset, tiny_config):
        train = tiny_dataset.split.train
        state_a = initialize_state(train, tiny_config, 1)
        state_b = initialize_state(train, tiny_config, 2)
        users, movies, _ = tiny_dataset.split.test_triplets()
        predictor = PosteriorPredictor(users, movies)
        pred_a = predictor.accumulate(state_a)
        pred_b = predictor.accumulate(state_b)
        np.testing.assert_allclose(predictor.mean_prediction(),
                                   (pred_a + pred_b) / 2)
        assert predictor.n_samples == 2

    def test_mean_before_accumulate_raises(self):
        predictor = PosteriorPredictor(np.array([0]), np.array([0]))
        with pytest.raises(ValidationError):
            predictor.mean_prediction()

    def test_sample_matrix_requires_flag(self, tiny_dataset, tiny_config):
        users, movies, _ = tiny_dataset.split.test_triplets()
        predictor = PosteriorPredictor(users, movies, keep_samples=False)
        with pytest.raises(ValidationError):
            predictor.sample_matrix()

    def test_sample_matrix_shape(self, tiny_dataset, tiny_config):
        train = tiny_dataset.split.train
        users, movies, _ = tiny_dataset.split.test_triplets()
        predictor = PosteriorPredictor(users, movies, keep_samples=True)
        for seed in range(3):
            predictor.accumulate(initialize_state(train, tiny_config, seed))
        assert predictor.sample_matrix().shape == (3, users.shape[0])

    def test_misaligned_indices_rejected(self):
        with pytest.raises(ValidationError):
            PosteriorPredictor(np.array([0, 1]), np.array([0]))

    def test_predict_ratings_clipping(self, tiny_dataset, tiny_config):
        state = initialize_state(tiny_dataset.split.train, tiny_config, 0)
        state.user_factors *= 100
        predictions = predict_ratings(state, np.arange(5), np.arange(5),
                                      clip=(0.5, 5.0))
        assert predictions.min() >= 0.5 and predictions.max() <= 5.0
        with pytest.raises(ValidationError):
            predict_ratings(state, [0], [0], clip=(5.0, 0.5))

    def test_predict_ratings_validates_index_ranges(self, tiny_dataset,
                                                    tiny_config):
        """Out-of-range indices raise ValidationError, not raw IndexError."""
        state = initialize_state(tiny_dataset.split.train, tiny_config, 0)
        with pytest.raises(ValidationError, match="outside"):
            predict_ratings(state, [state.n_users], [0])
        with pytest.raises(ValidationError, match="outside"):
            predict_ratings(state, [0], [state.n_movies])
        # Negative indices must not silently wrap around.
        with pytest.raises(ValidationError, match="outside"):
            predict_ratings(state, [-1], [0])
        with pytest.raises(ValidationError):
            predict_ratings(state, [0, 1], [0])  # misaligned

    def test_predictor_validates_indices(self, tiny_dataset, tiny_config):
        state = initialize_state(tiny_dataset.split.train, tiny_config, 0)
        with pytest.raises(ValidationError, match="negative"):
            PosteriorPredictor(np.array([-1]), np.array([0]))
        predictor = PosteriorPredictor(np.array([state.n_users]), np.array([0]))
        with pytest.raises(ValidationError, match="outside"):
            predictor.accumulate(state)

    def test_predictor_restore_round_trip(self, tiny_dataset, tiny_config):
        users, movies, _ = tiny_dataset.split.test_triplets()
        state = initialize_state(tiny_dataset.split.train, tiny_config, 1)
        source = PosteriorPredictor(users, movies)
        source.accumulate(state)
        clone = PosteriorPredictor(users, movies)
        clone.restore(source.prediction_sum, source.n_samples)
        np.testing.assert_array_equal(clone.mean_prediction(),
                                      source.mean_prediction())
        with pytest.raises(ValidationError):
            clone.restore(np.zeros(3), 1)  # wrong shape
        with pytest.raises(ValidationError):
            clone.restore(source.prediction_sum, -1)


# ---------------------------------------------------------------------------
# the Gibbs sampler
# ---------------------------------------------------------------------------

class TestGibbsSampler:
    def test_result_traces_have_expected_lengths(self, tiny_dataset, tiny_config):
        result = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                               tiny_dataset.split, seed=0)
        assert len(result.rmse_burn_in) == tiny_config.burn_in
        assert len(result.rmse_per_sample) == tiny_config.n_samples
        assert len(result.rmse_running_mean) == tiny_config.n_samples
        assert result.items_updated == tiny_config.total_iterations * (40 + 30)
        assert result.state.iteration == tiny_config.total_iterations

    def test_deterministic_given_seed(self, tiny_dataset, tiny_config):
        a = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=11)
        b = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=11)
        np.testing.assert_array_equal(a.state.user_factors, b.state.user_factors)
        assert a.final_rmse == b.final_rmse

    def test_different_seeds_differ(self, tiny_dataset, tiny_config):
        a = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=1)
        b = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=2)
        assert not np.allclose(a.state.user_factors, b.state.user_factors)

    def test_rmse_improves_over_burn_in_start(self, small_dataset):
        config = BPMFConfig(num_latent=5, burn_in=6, n_samples=10, alpha=4.0)
        result = GibbsSampler(config).run(small_dataset.split.train,
                                          small_dataset.split, seed=3)
        assert result.final_rmse < result.rmse_burn_in[0]

    def test_recovers_low_rank_signal(self, small_dataset):
        """Posterior-mean RMSE should approach the generating noise level."""
        config = BPMFConfig(num_latent=5, burn_in=8, n_samples=15, alpha=8.0)
        result = GibbsSampler(config).run(small_dataset.split.train,
                                          small_dataset.split, seed=5)
        noise_std = small_dataset.config.noise_std
        assert result.final_rmse < 2.5 * noise_std

    def test_forced_update_methods_agree(self, tiny_dataset, tiny_config):
        """Forcing each kernel must not change the sampled chain.

        Pinned to the reference engine: only there does ``update_method``
        select the literal kernel (the batched engine treats it as Gram
        accumulation structure and would run the same arithmetic thrice).
        """
        results = {}
        for method in (UpdateMethod.SERIAL_CHOLESKY, UpdateMethod.RANK_ONE,
                       UpdateMethod.PARALLEL_CHOLESKY):
            sampler = GibbsSampler(tiny_config,
                                   SamplerOptions(engine="reference",
                                                  update_method=method))
            results[method] = sampler.run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=4)
        reference = results[UpdateMethod.SERIAL_CHOLESKY]
        for method, result in results.items():
            np.testing.assert_allclose(result.state.user_factors,
                                       reference.state.user_factors, atol=1e-6)

    def test_without_split_uses_training_points(self, tiny_dataset, tiny_config):
        result = GibbsSampler(tiny_config).run(tiny_dataset.split.train, None, seed=0)
        assert result.predictions.shape[0] == tiny_dataset.split.train.nnz

    def test_callback_invoked_every_iteration(self, tiny_dataset, tiny_config):
        seen = []
        options = SamplerOptions(callback=lambda state, it: seen.append(it))
        GibbsSampler(tiny_config, options).run(tiny_dataset.split.train,
                                               tiny_dataset.split, seed=0)
        assert seen == list(range(tiny_config.total_iterations))

    def test_keep_sample_predictions(self, tiny_dataset, tiny_config):
        options = SamplerOptions(keep_sample_predictions=True)
        result = GibbsSampler(tiny_config, options).run(
            tiny_dataset.split.train, tiny_dataset.split, seed=0)
        assert result.sample_predictions.shape == (
            tiny_config.n_samples, tiny_dataset.split.n_test)

    def test_posterior_intervals_reasonably_calibrated(self, small_dataset):
        config = BPMFConfig(num_latent=5, burn_in=8, n_samples=20, alpha=8.0)
        options = SamplerOptions(keep_sample_predictions=True)
        result = GibbsSampler(config, options).run(small_dataset.split.train,
                                                   small_dataset.split, seed=2)
        coverage = coverage_interval(result.sample_predictions,
                                     small_dataset.split.test_values, level=0.9)
        # Sample-mean intervals ignore observation noise, so coverage is below
        # nominal; it must still be far from degenerate.
        assert coverage > 0.2

    def test_mismatched_state_rejected(self, tiny_dataset, small_dataset, tiny_config):
        state = initialize_state(small_dataset.split.train, tiny_config, 0)
        with pytest.raises(ValidationError):
            GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                          tiny_dataset.split, seed=0, state=state)

    def test_warm_start_from_state(self, tiny_dataset, tiny_config):
        rng = np.random.default_rng(0)
        state = initialize_state(tiny_dataset.split.train, tiny_config, rng)
        result = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                               tiny_dataset.split, seed=rng,
                                               state=state)
        assert result.state is state
        assert state.iteration == tiny_config.total_iterations

    def test_final_rmse_without_samples_raises(self, tiny_dataset):
        from repro.core.gibbs import BPMFResult
        result = BPMFResult(config=BPMFConfig(), state=None, rmse_per_sample=[],
                            rmse_running_mean=[], rmse_burn_in=[],
                            predictions=np.zeros(1))
        with pytest.raises(ValidationError):
            _ = result.final_rmse
