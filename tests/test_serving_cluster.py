"""Sharded serving cluster: parity, hot swap, fold-in deltas, teardown.

The load-bearing guarantee is *bit-identity*: for every tested shard
count the gateway's ``top_n``/``top_n_batch``/``predict_batch`` must
reproduce the single-process :class:`PredictionService` answers down to
the last bit — including exact score ties, ``exclude_seen`` filtering,
zero-rating users and folded-in cold-start users.  Snapshots here are
synthetic random posteriors (:func:`make_bench_snapshot`): serving parity
depends only on the factor values, so no Gibbs sampling is burned.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.core.recommend import merge_top_n, select_top_n
from repro.serving.checkpoint import save_snapshot
from repro.serving.cluster import ClusterError, ShardedScorer, SnapshotWatcher
from repro.serving.service import PredictionService
from repro.sparse.csr import RatingMatrix
from repro.sparse.shard import shard_bounds, slice_item_range
from repro.utils.validation import ValidationError

N_USERS, N_ITEMS, K = 50, 37, 4
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def snapshot():
    """Random posterior with exact score ties spanning shard boundaries."""
    snap = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=3)
    # Duplicate factor rows produce exactly tied scores for *every* user;
    # the copies live in different shards for every tested shard count.
    snap.state.movie_factors[30] = snap.state.movie_factors[2]
    snap.state.movie_factors[35] = snap.state.movie_factors[2]
    snap.state.movie_factors[20] = snap.state.movie_factors[5]
    return snap


@pytest.fixture(scope="module")
def train():
    """Sparse ratings: user 0 rated nothing, user 1 rated everything."""
    rng = np.random.default_rng(11)
    users, items = np.nonzero(rng.random((N_USERS, N_ITEMS)) < 0.3)
    keep = users != 0
    users, items = users[keep], items[keep]
    users = np.concatenate([users, np.full(N_ITEMS, 1)])
    items = np.concatenate([items, np.arange(N_ITEMS)])
    values = rng.integers(1, 6, size=users.shape[0]).astype(np.float64)
    return RatingMatrix.from_arrays(N_USERS, N_ITEMS, users, items, values)


# ---------------------------------------------------------------------------
# deterministic selection + exact merge (core/recommend.py helpers)
# ---------------------------------------------------------------------------

def test_select_top_n_orders_by_score_then_index():
    scores = np.array([1.0, 3.0, 3.0, 2.0, 3.0, 0.5])
    assert select_top_n(scores, 4).tolist() == [1, 2, 4, 3]
    # Boundary tie: only two of the three 3.0s fit; lowest indices win.
    assert select_top_n(scores, 2).tolist() == [1, 2]
    assert select_top_n(scores, 99).tolist() == [1, 2, 4, 3, 0, 5]
    assert select_top_n(np.empty(0), 3).tolist() == []


def test_select_top_n_matches_full_sort_on_random_data():
    rng = np.random.default_rng(0)
    for _ in range(25):
        scores = rng.integers(0, 6, size=40).astype(float)  # many ties
        n = int(rng.integers(1, 40))
        expected = sorted(range(40), key=lambda i: (-scores[i], i))[:n]
        assert select_top_n(scores, n).tolist() == expected


def test_merge_top_n_is_exact_against_global_selection():
    rng = np.random.default_rng(1)
    scores = rng.integers(0, 8, size=60).astype(float)
    n = 9
    parts = []
    for lo, hi in shard_bounds(60, 4):
        local = select_top_n(scores[lo:hi], n)
        parts.append((local + lo, scores[lo:hi][local]))
    items, merged = merge_top_n(parts, n)
    expected = select_top_n(scores, n)
    assert items.tolist() == expected.tolist()
    assert merged.tolist() == scores[expected].tolist()


# ---------------------------------------------------------------------------
# CSR item-range slicing (sparse/shard.py)
# ---------------------------------------------------------------------------

def test_shard_bounds_partition_exactly():
    bounds = shard_bounds(37, 4)
    assert bounds[0][0] == 0 and bounds[-1][1] == 37
    sizes = [hi - lo for lo, hi in bounds]
    assert sum(sizes) == 37 and max(sizes) - min(sizes) <= 1
    assert all(bounds[i][1] == bounds[i + 1][0] for i in range(3))
    with pytest.raises(ValidationError):
        shard_bounds(3, 5)


def test_slice_item_range_matches_dense_restriction(train):
    dense = train.to_dense()
    for lo, hi in shard_bounds(N_ITEMS, 3):
        sliced = slice_item_range(train, lo, hi)
        assert sliced.shape == (N_USERS, hi - lo)
        np.testing.assert_array_equal(sliced.to_dense(), dense[:, lo:hi])
    with pytest.raises(ValidationError):
        slice_item_range(train, 5, 5)
    with pytest.raises(ValidationError):
        slice_item_range(train, 0, N_ITEMS + 1)


# ---------------------------------------------------------------------------
# sharded vs single-process bit-parity
# ---------------------------------------------------------------------------

def _assert_same_recommendation(expected, served):
    assert expected.items.tolist() == served.items.tolist()
    assert expected.scores.tobytes() == served.scores.tobytes()


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_top_n_bit_identical_across_shard_counts(snapshot, train, n_shards):
    service = PredictionService(snapshot, train=train)
    with ShardedScorer(snapshot, n_shards=n_shards, train=train) as scorer:
        # User 0 has zero ratings, user 1 rated everything, the rest are
        # ordinary; ties are present for every user (duplicated items).
        for user in (0, 1, 2, 17, N_USERS - 1):
            for exclude in (True, False):
                _assert_same_recommendation(
                    service.top_n(user, n=8, exclude_seen=exclude),
                    scorer.top_n(user, n=8, exclude_seen=exclude))
        # n larger than the candidate set, and the rated-everything user.
        _assert_same_recommendation(service.top_n(3, n=500),
                                    scorer.top_n(3, n=500))
        empty = scorer.top_n(1, n=5, exclude_seen=True)
        assert len(empty) == 0  # user 1 rated every item

        batch = scorer.top_n_batch([0, 2, 5], n=6)
        reference = service.top_n_batch([0, 2, 5], n=6)
        for user in reference:
            _assert_same_recommendation(reference[user], batch[user])


@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_top_n_batch_is_one_dispatch_and_bit_identical(snapshot, train,
                                                       n_shards):
    """The fused batch entry: one worker fan-out, per-user exact bits.

    This is the gateway half of the cross-user query-fusion guarantee:
    however many users share the window, each one's ranking (ties
    included — the fixture duplicates item rows) must equal their lone
    ``top_n`` down to the score bytes, and the whole window must cost a
    single dispatch.
    """
    with ShardedScorer(snapshot, n_shards=n_shards, train=train) as scorer:
        users = [0, 1, 2, 17, 2, N_USERS - 1]  # duplicate user included
        for exclude in (True, False):
            singles = {user: scorer.top_n(user, n=8, exclude_seen=exclude)
                       for user in dict.fromkeys(users)}
            dispatches_before = scorer.n_batch_dispatches
            batch = scorer.top_n_batch(users, n=8, exclude_seen=exclude)
            assert scorer.n_batch_dispatches == dispatches_before + 1
            assert sorted(batch) == sorted(dict.fromkeys(users))
            for user, expected in singles.items():
                _assert_same_recommendation(expected, batch[user])
        assert scorer.top_n_batch([], n=3) == {}
        with pytest.raises(ValidationError):
            scorer.top_n_batch([0, N_USERS + 1], n=3)


def test_stats_surface_worker_pool_health(snapshot):
    with ShardedScorer(snapshot, n_shards=2) as scorer:
        scorer.top_n(0, n=3)
        stats = scorer.stats()
        assert stats["pool_workers"] == 2
        assert stats["pool_spawns"] == 1
        assert stats["pool_respawns"] == 0
        assert stats["pool_worker_deaths"] == 0
        assert stats["pool_registration_failures"] == 0
        # Kill a worker: the failed query counts the death, the recovery
        # counts the respawn.
        scorer._workers[1][0].terminate()
        scorer._workers[1][0].join(timeout=5.0)
        with pytest.raises(ClusterError):
            scorer.top_n(0, n=3)
        assert len(scorer.top_n(0, n=3)) == 3
        stats = scorer.stats()
        assert stats["pool_spawns"] == 2
        assert stats["pool_respawns"] == 1
        assert stats["pool_worker_deaths"] >= 1


@pytest.mark.parametrize("n_shards", (2, 3))
def test_ties_across_shard_boundaries_keep_deterministic_order(
        snapshot, n_shards):
    service = PredictionService(snapshot)
    with ShardedScorer(snapshot, n_shards=n_shards) as scorer:
        for user in range(6):
            expected = service.top_n(user, n=N_ITEMS, exclude_seen=False)
            served = scorer.top_n(user, n=N_ITEMS, exclude_seen=False)
            _assert_same_recommendation(expected, served)
            # The duplicated items really are exact ties, ordered by id.
            scores = dict(zip(expected.items.tolist(),
                              expected.scores.tolist()))
            assert scores[2] == scores[30] == scores[35]
            positions = [expected.items.tolist().index(item)
                         for item in (2, 30, 35)]
            assert positions == sorted(positions)


def test_predict_batch_parity_and_validation(snapshot, train):
    service = PredictionService(snapshot, train=train)
    with ShardedScorer(snapshot, n_shards=3, train=train) as scorer:
        rng = np.random.default_rng(5)
        users = rng.integers(0, N_USERS, size=64)
        items = rng.integers(0, N_ITEMS, size=64)
        assert service.predict_batch(users, items).tobytes() \
            == scorer.predict_batch(users, items).tobytes()
        assert scorer.predict(4, 7) == service.predict(4, 7)
        with pytest.raises(ValidationError):
            scorer.predict_batch(np.array([0]), np.array([N_ITEMS]))
        with pytest.raises(ValidationError):
            scorer.predict_batch(np.array([N_USERS]), np.array([0]))


def test_fewer_workers_than_shards_still_exact(snapshot, train):
    service = PredictionService(snapshot, train=train)
    with ShardedScorer(snapshot, n_shards=4, n_workers=2,
                       train=train) as scorer:
        assert scorer.n_workers == 2
        for user in (0, 9, 23):
            _assert_same_recommendation(service.top_n(user, n=7),
                                        scorer.top_n(user, n=7))


def test_clip_applies_after_selection(snapshot):
    service = PredictionService(snapshot, clip=(1.0, 5.0))
    with ShardedScorer(snapshot, n_shards=2, clip=(1.0, 5.0)) as scorer:
        _assert_same_recommendation(service.top_n(2, n=6),
                                    scorer.top_n(2, n=6))


# ---------------------------------------------------------------------------
# fold-in: cold start and incremental updates
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("n_shards", SHARD_COUNTS)
def test_fold_in_and_incremental_updates_bit_identical(snapshot, train,
                                                       n_shards):
    service = PredictionService(snapshot, train=train)
    with ShardedScorer(snapshot, n_shards=n_shards, train=train) as scorer:
        items = np.array([0, 12, 36])
        values = np.array([4.0, 2.0, 5.0])
        assert service.fold_in(items, values) == scorer.fold_in(items, values)
        ids_a = service.fold_in_batch([np.array([3]), np.array([], int)],
                                      [np.array([1.5]), np.array([])])
        ids_b = scorer.fold_in_batch([np.array([3]), np.array([], int)],
                                     [np.array([1.5]), np.array([])])
        assert ids_a == ids_b
        for user in [N_USERS] + ids_a:
            _assert_same_recommendation(service.top_n(user, n=6),
                                        scorer.top_n(user, n=6))
        # Incremental rank-k update: same row bits on both sides.
        row_a = service.add_ratings(N_USERS, np.array([5, 6]),
                                    np.array([2.0, 4.5]))
        row_b = scorer.add_ratings(N_USERS, np.array([5, 6]),
                                   np.array([2.0, 4.5]))
        assert row_a.tobytes() == row_b.tobytes()
        _assert_same_recommendation(service.top_n(N_USERS, n=6),
                                    scorer.top_n(N_USERS, n=6))


def test_add_ratings_matches_full_refold(snapshot):
    """The rank-k update lands on the same posterior as re-folding all."""
    service = PredictionService(snapshot)
    user = service.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
    incremental = service.add_ratings(user, np.array([2, 7]),
                                      np.array([5.0, 1.0]))
    fresh = PredictionService(snapshot)
    refolded = fresh.fold_in(np.array([0, 1, 2, 7]),
                             np.array([4.0, 3.0, 5.0, 1.0]))
    np.testing.assert_allclose(incremental, fresh._user_factors[refolded],
                               rtol=1e-10, atol=1e-12)


def test_add_ratings_rejects_training_users(snapshot):
    with ShardedScorer(snapshot, n_shards=2) as scorer:
        with pytest.raises(ValidationError):
            scorer.add_ratings(0, np.array([1]), np.array([3.0]))
    service = PredictionService(snapshot)
    with pytest.raises(ValidationError):
        service.add_ratings(0, np.array([1]), np.array([3.0]))


# ---------------------------------------------------------------------------
# hot snapshot swap
# ---------------------------------------------------------------------------

def test_load_version_swaps_to_the_new_posterior(snapshot, train):
    replacement = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=99)
    with ShardedScorer(snapshot, n_shards=2, train=train) as scorer:
        before = scorer.top_n(2, n=5)
        folded = scorer.fold_in(np.array([0, 4]), np.array([5.0, 2.0]))
        assert scorer.load_version(replacement) == 1
        assert scorer.version == 1 and scorer.n_swaps == 1
        reference = PredictionService(replacement, train=train)
        for user in (0, 2, 31):
            _assert_same_recommendation(reference.top_n(user, n=5),
                                        scorer.top_n(user, n=5))
        assert scorer.top_n(2, n=5).scores.tobytes() != before.scores.tobytes()
        # The folded-in user survives, re-folded against the new factors.
        survived = scorer.top_n(folded, n=5)
        assert np.isfinite(survived.scores).all()
        assert scorer.n_users == N_USERS + 1
        # And their incremental state still works post-swap.
        scorer.add_ratings(folded, np.array([9]), np.array([4.0]))
        assert np.isfinite(scorer.top_n(folded, n=5).scores).all()


def test_load_version_rejects_shape_and_offset_drift(snapshot):
    with ShardedScorer(snapshot, n_shards=2) as scorer:
        with pytest.raises(ValidationError):
            scorer.load_version(
                make_bench_snapshot(N_USERS, N_ITEMS + 3, K, seed=1))
        with pytest.raises(ValidationError):
            scorer.load_version(
                make_bench_snapshot(N_USERS, N_ITEMS, K + 1, seed=1))
        recentred = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=1)
        recentred.offset = snapshot.offset + 1.0
        with pytest.raises(ValidationError, match="offset"):
            scorer.load_version(recentred)
        assert scorer.version == 0 and scorer.n_swaps == 0


def test_swap_under_query_storm_loses_no_requests(snapshot, train):
    """The kill/swap test: a query storm across a hot swap.

    Every request must succeed and return a ranking bit-identical to
    either the old or the new posterior — never a mixture, never an
    error, never a dropped request.
    """
    replacement = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=7)
    old_ref = PredictionService(snapshot, train=train)
    new_ref = PredictionService(replacement, train=train)
    results, failures = [], []

    with ShardedScorer(snapshot, n_shards=2, train=train) as scorer:
        scorer.top_n(0, n=1)  # spawn the pool before any threads exist
        stop = threading.Event()

        def hammer():
            rng = np.random.default_rng(threading.get_ident() % 2**32)
            while not stop.is_set():
                user = int(rng.integers(0, N_USERS))
                try:
                    results.append((user, scorer.top_n(user, n=5)))
                except Exception as error:  # noqa: BLE001 - recorded below
                    failures.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            scorer.load_version(replacement)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        # A few queries after the swap completed, for good measure.
        for user in (0, 10, 20):
            results.append((user, scorer.top_n(user, n=5)))

    assert not failures, failures[:3]
    assert len(results) >= 3
    matched_new = 0
    for user, served in results:
        old = old_ref.top_n(user, n=5)
        new = new_ref.top_n(user, n=5)
        is_old = (served.items.tolist() == old.items.tolist()
                  and served.scores.tobytes() == old.scores.tobytes())
        is_new = (served.items.tolist() == new.items.tolist()
                  and served.scores.tobytes() == new.scores.tobytes())
        assert is_old or is_new, f"user {user} served a mixed version"
        matched_new += is_new
    assert matched_new >= 3  # the post-swap queries saw the new version


# ---------------------------------------------------------------------------
# the snapshot watcher
# ---------------------------------------------------------------------------

def test_watcher_hot_swaps_on_file_change(snapshot, train, tmp_path):
    path = tmp_path / "model.npz"
    save_snapshot(snapshot, path)
    with ShardedScorer(path, n_shards=2, train=train) as scorer:
        watcher = SnapshotWatcher(scorer, path)
        assert watcher.check_once() is False  # primed: nothing new yet
        replacement = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=21)
        save_snapshot(replacement, path)
        assert watcher.check_once() is True
        assert scorer.version == 1 and watcher.n_reloads == 1
        reference = PredictionService(replacement, train=train)
        _assert_same_recommendation(reference.top_n(5, n=6),
                                    scorer.top_n(5, n=6))


def test_watcher_rejects_corrupt_and_mismatched_snapshots(snapshot, train,
                                                          tmp_path):
    path = tmp_path / "model.npz"
    save_snapshot(snapshot, path)
    with ShardedScorer(path, n_shards=2, train=train) as scorer:
        watcher = SnapshotWatcher(scorer, path)
        before = scorer.top_n(4, n=5)

        path.write_bytes(b"this is not a snapshot")
        assert watcher.check_once() is False
        assert watcher.n_rejected == 1 and watcher.last_error

        save_snapshot(make_bench_snapshot(N_USERS, N_ITEMS + 1, K, seed=2),
                      path)
        assert watcher.check_once() is False
        assert watcher.n_rejected == 2

        # Still serving the original version, bit-for-bit.
        assert scorer.version == 0
        _assert_same_recommendation(before, scorer.top_n(4, n=5))


def test_watcher_directory_mode_picks_newest(snapshot, train, tmp_path):
    save_snapshot(snapshot, tmp_path / "v001.npz")
    with ShardedScorer(tmp_path / "v001.npz", n_shards=2,
                       train=train) as scorer:
        watcher = SnapshotWatcher(scorer, tmp_path)
        # A writer's in-flight atomic-save temp file must never be a
        # candidate, however new it is.
        (tmp_path / "v002.npz.tmp.npz").write_bytes(b"half-written")
        assert watcher.check_once() is False and watcher.n_rejected == 0
        replacement = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=33)
        save_snapshot(replacement, tmp_path / "v002.npz")
        assert watcher.check_once() is True
        reference = PredictionService(replacement, train=train)
        _assert_same_recommendation(reference.top_n(7, n=5),
                                    scorer.top_n(7, n=5))


def test_watcher_retries_transient_failures_then_gives_up(snapshot,
                                                          tmp_path):
    """Gateway-side swap failures retry (bounded); the file isn't skipped."""
    path = tmp_path / "model.npz"
    save_snapshot(snapshot, path)
    with ShardedScorer(path, n_shards=1) as scorer:
        watcher = SnapshotWatcher(scorer, path, max_attempts=3)
        save_snapshot(make_bench_snapshot(N_USERS, N_ITEMS, K, seed=44), path)
        real, calls = scorer.load_version, {"n": 0}

        def flaky(source):
            calls["n"] += 1
            if calls["n"] == 1:
                raise MemoryError("transient segment exhaustion")
            return real(source)

        scorer.load_version = flaky
        assert watcher.check_once() is False and watcher.n_rejected == 1
        # Same signature, but within max_attempts: retried and served.
        assert watcher.check_once() is True
        assert scorer.version == 1 and watcher.n_reloads == 1

        # A persistently failing candidate is abandoned after the cap.
        save_snapshot(make_bench_snapshot(N_USERS, N_ITEMS, K, seed=45), path)
        scorer.load_version = lambda source: (_ for _ in ()).throw(
            MemoryError("still failing"))
        for _ in range(3):
            assert watcher.check_once() is False
        assert watcher.n_rejected == 4
        assert watcher.check_once() is False  # given up: no further attempt
        assert watcher.n_rejected == 4


def test_watcher_thread_runs_and_stops(snapshot, tmp_path):
    path = tmp_path / "model.npz"
    save_snapshot(snapshot, path)
    with ShardedScorer(path, n_shards=1) as scorer:
        with SnapshotWatcher(scorer, path, interval=0.05) as watcher:
            assert watcher.running
        assert not watcher.running


# ---------------------------------------------------------------------------
# worker-pool failure handling
# ---------------------------------------------------------------------------

def test_dead_worker_raises_and_pool_respawns(snapshot):
    with ShardedScorer(snapshot, n_shards=2) as scorer:
        expected = scorer.top_n(3, n=5)
        scorer._workers[0][0].terminate()
        scorer._workers[0][0].join(timeout=5.0)
        with pytest.raises(ClusterError):
            scorer.top_n(3, n=5)
        # The pool respawns lazily and serves the same answers again.
        served = scorer.top_n(3, n=5)
        _assert_same_recommendation(expected, served)


def test_close_is_terminal_and_idempotent(snapshot):
    scorer = ShardedScorer(snapshot, n_shards=2)
    assert len(scorer.top_n(0, n=3)) == 3
    scorer.close()
    scorer.close()
    with pytest.raises(ValidationError):
        scorer.top_n(0, n=3)
