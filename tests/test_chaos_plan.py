"""Determinism of the fault planner and injector (the replay guarantee).

The chaos layer's whole value rests on one property: a seed *is* the
schedule.  ``FaultPlan.generate(seed)`` must be a pure function of its
arguments, and a ``FaultInjector`` fed the same plan and the same call
sequence must trigger the identical fault log — that is what lets a CI
chaos failure be replayed exactly.  Both halves are pinned here with
hypothesis properties.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.chaos import (
    FLEET_ACTIONS,
    SITE_ACTIONS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)

COMMON_SETTINGS = settings(max_examples=30, deadline=None)


# ---------------------------------------------------------------------------
# plan generation
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**32 - 1))
@COMMON_SETTINGS
def test_same_seed_same_schedule(seed):
    first = FaultPlan.generate(seed, n_replicas=3)
    second = FaultPlan.generate(seed, n_replicas=3)
    assert first.digest() == second.digest()
    assert first.events == second.events
    assert first.fleet == second.fleet


@given(seed=st.integers(0, 2**16), horizon=st.integers(1, 500),
       n_events=st.integers(0, 64), n_replicas=st.integers(0, 5))
@COMMON_SETTINGS
def test_generated_plans_are_well_formed(seed, horizon, n_events,
                                         n_replicas):
    plan = FaultPlan.generate(seed, n_events=n_events, horizon=horizon,
                              n_replicas=n_replicas)
    seen = set()
    for event in plan.events:
        assert event.site in SITE_ACTIONS
        assert event.action in SITE_ACTIONS[event.site]
        assert 1 <= event.step <= horizon
        assert (event.site, event.step) not in seen  # one fault per call
        seen.add((event.site, event.step))
    assert plan.events == sorted(plan.events,
                                 key=lambda e: (e.site, e.step))
    for event in plan.fleet:
        assert event.action in FLEET_ACTIONS
        assert 0 <= event.replica < max(n_replicas, 1)
        assert event.at >= 0.3 and event.arg > 0
    if n_replicas == 0:
        assert plan.fleet == []


def test_seed_changes_the_schedule():
    digests = {FaultPlan.generate(seed, n_replicas=2).digest()
               for seed in range(20)}
    assert len(digests) == 20  # astronomically unlikely to collide


def test_site_restriction_is_honoured():
    plan = FaultPlan.generate(3, n_events=40, sites=("wal.append",))
    assert plan.events  # the site has actions, so events were drawn
    assert {event.site for event in plan.events} == {"wal.append"}


# ---------------------------------------------------------------------------
# the injector's replay guarantee
# ---------------------------------------------------------------------------

@given(seed=st.integers(0, 2**16),
       calls=st.lists(st.sampled_from(sorted(SITE_ACTIONS)),
                      min_size=0, max_size=400))
@COMMON_SETTINGS
def test_same_seed_same_calls_same_fault_log(seed, calls):
    """The acceptance pin: identical seeds (and identical traffic)
    trigger the byte-identical fault-event log."""
    plan = FaultPlan.generate(seed, n_events=24, horizon=100)
    first, second = FaultInjector(plan), FaultInjector(plan)
    for site in calls:
        first.check(site)
    for site in calls:
        second.check(site)
    assert first.log == second.log
    assert first.counts() == second.counts()
    # Every triggered event is one the plan scheduled, at its exact step.
    scheduled = {(e.site, e.step): e for e in plan.events}
    for entry in first.log:
        event = scheduled[(entry["site"], entry["step"])]
        assert entry["action"] == event.action
        assert entry["arg"] == event.arg


def test_injector_fires_each_event_exactly_once():
    plan = FaultPlan(seed=0, events=[
        FaultEvent("net.send", 2, "drop"),
        FaultEvent("net.send", 4, "reset"),
    ])
    injector = FaultInjector(plan)
    fired = [injector.check("net.send") for _ in range(6)]
    assert [e.action if e else None for e in fired] == \
        [None, "drop", None, "reset", None, None]
    assert [entry["seq"] for entry in injector.log] == [0, 1]
    assert injector.stats()["triggered"] == 2


def test_disabled_injector_is_inert():
    injector = FaultInjector(None)
    for _ in range(100):
        assert injector.check("net.send") is None
    assert injector.log == []
    assert injector.counts() == {}


def test_plan_json_round_trip_is_canonical():
    plan = FaultPlan.generate(11, n_replicas=2)
    payload = plan.to_json()
    assert payload["seed"] == 11
    assert len(payload["events"]) == len(plan.events)
    assert plan.digest() == FaultPlan.generate(11, n_replicas=2).digest()


def test_unknown_scheduled_site_never_fires():
    plan = FaultPlan(seed=0, events=[FaultEvent("net.send", 1, "drop")])
    injector = FaultInjector(plan)
    assert injector.check("net.recv") is None  # different site, step 1
    assert injector.log == []


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
