"""Deadline propagation, admission control and backoff — the defenses.

The chaos layer's defensive half: expired work is shed, never scored
(the fuser property every other guarantee leans on), overload turns
into retryable ``overloaded`` errors instead of unbounded queueing, a
``deadline_exceeded`` reply raises :class:`DeadlineError` without
burning failover attempts, and the failover/shipping backoff is a
deterministic, capped exponential.
"""

from __future__ import annotations

import asyncio
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.serving import make_bench_snapshot
from repro.serving.net import (
    Backoff,
    DeadlineError,
    NetError,
    QueryFuser,
    ReplicaSet,
    ServingClient,
)
from repro.serving.net.fusion import DeadlineExpired
from repro.serving.service import PredictionService

N_USERS, N_ITEMS, K = 40, 31, 4

COMMON_SETTINGS = settings(max_examples=25, deadline=None)


@pytest.fixture(scope="module")
def snapshot():
    return make_bench_snapshot(N_USERS, N_ITEMS, K, seed=5)


@pytest.fixture(scope="module")
def reference(snapshot):
    return PredictionService(snapshot)


# ---------------------------------------------------------------------------
# backoff policy
# ---------------------------------------------------------------------------

@given(base=st.floats(0.001, 5.0), factor=st.floats(1.0, 20.0),
       jitter=st.floats(0.0, 1.0), seed=st.integers(0, 2**16),
       failures=st.integers(1, 80))
@COMMON_SETTINGS
def test_backoff_is_bounded_and_deterministic(base, factor, jitter, seed,
                                              failures):
    cap = base * factor
    first = Backoff(base=base, cap=cap, jitter=jitter, seed=seed)
    second = Backoff(base=base, cap=cap, jitter=jitter, seed=seed)
    sequence = [first.delay(n) for n in range(1, failures + 1)]
    assert sequence == [second.delay(n) for n in range(1, failures + 1)]
    for delay in sequence:
        assert 0.0 <= delay <= cap * (1.0 + jitter) + 1e-9
    # Ideal (jitter-free) delays double per failure up to the cap.
    ideal = Backoff(base=base, cap=cap, jitter=0.0)
    assert ideal.delay(1) == pytest.approx(base)
    assert ideal.delay(60) == pytest.approx(cap)


def test_backoff_edge_cases():
    assert Backoff(base=0.0, cap=0.0).delay(5) == 0.0
    assert Backoff(base=1.0, cap=4.0, jitter=0.0).delay(0) == 0.0
    with pytest.raises(ValueError):
        Backoff(base=-1.0, cap=2.0)
    with pytest.raises(ValueError):
        Backoff(base=2.0, cap=1.0)
    with pytest.raises(ValueError):
        Backoff(base=1.0, cap=2.0, jitter=1.5)


# ---------------------------------------------------------------------------
# the fuser never dispatches expired work
# ---------------------------------------------------------------------------

def _run_fused(requests):
    """Enqueue (user, expired?) requests on one fuser; returns
    (dispatched user sets, per-request outcomes)."""
    calls = []

    def top_n_batch(users, n=10, exclude_seen=True):
        calls.append(sorted(set(users)))
        return {user: ("served", user) for user in users}

    async def scenario():
        fuser = QueryFuser(top_n_batch, window_ms=1.0, max_batch=10**6)
        now = time.monotonic()
        futures = [
            asyncio.ensure_future(fuser.top_n(
                user, n=5,
                deadline=(now - 10.0) if expired else (now + 60.0)))
            for user, expired in requests
        ]
        await fuser.drain()
        return await asyncio.gather(*futures, return_exceptions=True)

    return calls, asyncio.run(scenario())


@given(requests=st.lists(
    st.tuples(st.integers(0, 20), st.booleans()), min_size=1, max_size=30))
@COMMON_SETTINGS
def test_expired_requests_are_never_dispatched(requests):
    """The acceptance pin: a request whose deadline has passed fails
    with DeadlineExpired and is never handed to a scorer."""
    calls, outcomes = _run_fused(requests)
    dispatched = {user for call in calls for user in call}
    for (user, expired), outcome in zip(requests, outcomes):
        if expired:
            assert isinstance(outcome, DeadlineExpired)
        else:
            assert outcome == ("served", user)
    expired_only = {user for user, expired in requests if expired} - \
        {user for user, expired in requests if not expired}
    assert not (dispatched & expired_only)


def test_expired_waiter_behind_inflight_batch_is_shed():
    """A waiter queued behind a slow in-flight batch expires at the
    flush boundary instead of being scored late."""
    release = threading.Event()
    calls = []

    def top_n_batch(users, n=10, exclude_seen=True):
        calls.append(sorted(set(users)))
        if users == [1]:
            release.wait(5.0)
        return {user: user for user in users}

    async def scenario():
        # A long fallback window: the doomed waiter's deadline passes
        # while it accumulates behind the in-flight batch, so the
        # eventual flush must shed it instead of scoring it late.
        fuser = QueryFuser(top_n_batch, window_ms=150.0)
        blocked = asyncio.ensure_future(fuser.top_n(1, n=5))
        await asyncio.sleep(0.05)  # eager dispatch; batch now blocked
        doomed = asyncio.ensure_future(fuser.top_n(
            2, n=5, deadline=time.monotonic() + 0.02))
        with pytest.raises(DeadlineExpired):
            await doomed
        release.set()
        assert await blocked == 1
        assert fuser.stats()["fusion_expired"] == 1

    asyncio.run(scenario())
    assert [1] in calls and [2] not in calls


# ---------------------------------------------------------------------------
# server-side deadline gate and client DeadlineError semantics
# ---------------------------------------------------------------------------

def test_expired_deadline_is_shed_at_the_server_gate(snapshot):
    """With the lone dispatch slot held, a deadlined request expires
    while queueing and comes back ``deadline_exceeded`` — raised as
    DeadlineError without marking the replica dead."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, max_in_flight=1,
                    fuse_window_ms=None) as replicas:
        server = replicas.replicas[0].server
        with ServingClient(replicas.addresses, timeout=10.0) as client:
            client.top_n(0, n=5)  # connection + handshake up front
            server.stall(1.0)
            hold = threading.Thread(
                target=lambda: ServingClient(replicas.addresses,
                                             timeout=10.0).predict(0, 1))
            hold.start()
            time.sleep(0.2)  # the holder owns the slot, behind the stall
            begin = time.monotonic()
            with pytest.raises(DeadlineError):
                client.top_n(1, n=5, deadline_ms=200)
            elapsed = time.monotonic() - begin
            assert elapsed < 5.0  # shed at the gate, not timed out
            hold.join(timeout=10.0)
            assert server.stats()["n_deadline_shed"] >= 1
            # The replica was never failed over or marked dead: the
            # very next plain request succeeds on the same connection.
            assert client.n_failovers == 0
            assert len(client.top_n(2, n=5)) == 5


def test_client_side_deadline_preempts_sending(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1) as replicas:
        with ServingClient(replicas.addresses) as client:
            with pytest.raises(DeadlineError):
                client.top_n(0, n=5, deadline_ms=0)
            with pytest.raises(DeadlineError):
                client.predict(0, 1, deadline_ms=-5)
            assert len(client.top_n(0, n=5)) == 5  # client still usable


def test_per_call_timeout_override(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, fuse_window_ms=None) as replicas:
        server = replicas.replicas[0].server
        with ServingClient(replicas.addresses, timeout=30.0) as client:
            client.top_n(0, n=5)
            server.stall(1.2)
            begin = time.monotonic()
            with pytest.raises(NetError):
                client.top_n(0, n=5, timeout=0.15)
            assert time.monotonic() - begin < 1.0
            # The cached connection's timeout is restored afterwards.
            time.sleep(1.2)
            assert len(client.top_n(0, n=5)) == 5


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------

def test_overload_sheds_with_retryable_error(snapshot):
    """One slot, queue depth one: the third concurrent request is shed
    with a retryable ``overloaded`` error instead of queueing."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, max_in_flight=1, max_queue_depth=1,
                    fuse_window_ms=None) as replicas:
        server = replicas.replicas[0].server
        results = []

        def call(delay):
            time.sleep(delay)
            try:
                with ServingClient(replicas.addresses,
                                   timeout=10.0) as client:
                    client.predict(0, 1)
                results.append("ok")
            except NetError as error:
                results.append(error)

        server.stall(1.5)
        threads = [threading.Thread(target=call, args=(delay,))
                   for delay in (0.0, 0.3, 0.6, 0.7)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20.0)
        assert not any(thread.is_alive() for thread in threads)
        shed = [r for r in results if isinstance(r, NetError)]
        assert shed, f"nothing was shed: {results}"
        assert all(error.retryable for error in shed)
        stats = server.stats()
        assert stats["n_overload_shed"]["read"] >= 1
        assert stats["max_queue_depth"] == 1
        # Back to normal once the stall clears.
        with ServingClient(replicas.addresses) as client:
            assert client.predict(0, 1) == pytest.approx(
                PredictionService(snapshot).predict(0, 1))


def test_reads_and_writes_shed_independently(snapshot):
    """The write queue filling up must not shed reads (and vice
    versa): the two classes have separate depth counters."""
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, max_in_flight=1, max_queue_depth=1,
                    fuse_window_ms=None, replicate=False) as replicas:
        server = replicas.replicas[0].server
        outcomes = {"write_shed": 0, "read_ok": 0}
        lock = threading.Lock()

        def write(delay):
            time.sleep(delay)
            try:
                with ServingClient(replicas.addresses, timeout=10.0,
                                   retry_writes=False) as client:
                    client.rate(0, np.array([1]), np.array([3.0]))
            except NetError:
                with lock:
                    outcomes["write_shed"] += 1

        def read(delay):
            time.sleep(delay)
            with ServingClient(replicas.addresses,
                               timeout=10.0) as client:
                client.predict(0, 1)
            with lock:
                outcomes["read_ok"] += 1

        server.stall(1.5)
        threads = [threading.Thread(target=write, args=(d,))
                   for d in (0.0, 0.2, 0.4, 0.5)] + \
                  [threading.Thread(target=read, args=(0.6,))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20.0)
        assert not any(thread.is_alive() for thread in threads)
        # Writes saturated their queue and shed; the read rode through.
        assert server.stats()["n_overload_shed"]["write"] >= 1
        assert server.stats()["n_overload_shed"]["read"] == 0
        assert outcomes["read_ok"] == 1


def test_queue_depth_is_surfaced_in_health(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1) as replicas:
        with ServingClient(replicas.addresses) as client:
            health = client.health()
            server_stats = health["server"]
            assert server_stats["queue_depth"] == {"read": 0, "write": 0}
            assert server_stats["max_queue_depth"] == 256
            assert server_stats["n_overload_shed"] == \
                {"read": 0, "write": 0}
            assert server_stats["n_deadline_shed"] == 0


# ---------------------------------------------------------------------------
# replication lag surfacing
# ---------------------------------------------------------------------------

def test_replication_lag_in_stats(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2, ship_cooldown=0.05,
                    ship_backoff_max=0.2) as replicas:
        with ServingClient(replicas.addresses) as client:
            cold = client.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
            leader, follower = replicas.wal_stats()
            assert leader["role"] == "leader"
            assert leader["max_follower_lag"] == 0
            assert list(leader["follower_applied"].values()) == \
                [leader["high_seqno"]]
            assert follower["role"] == "follower"
            assert follower["leader_hwm"] == leader["high_seqno"]
            assert follower["lag"] == 0
            # Kill the follower: subsequent acked writes now lag it.
            replicas.kill(1)
            client.rate(cold, np.array([2]), np.array([5.0]))
            client.rate(cold, np.array([3]), np.array([1.0]))
            leader = replicas.wal_stats()[0]
            assert leader["max_follower_lag"] >= 1


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
