"""Unit tests for the tracer (repro.obs.trace).

The contract under test: spans parent explicitly (wire context) or via
the thread-local active span; the ring buffer bounds memory; the JSONL
sink persists what the ring may evict; and every helper degrades to a
no-op when no tracer/span is active — the disabled path must stay cold.
"""

from __future__ import annotations

import json
import threading

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    Tracer,
    active_span,
    annotate_active,
    maybe_span,
)


# ---------------------------------------------------------------------------
# context parsing (the wire side)
# ---------------------------------------------------------------------------

def test_trace_context_round_trips_and_tolerates_garbage():
    ctx = TraceContext("t" * 32, "s" * 16)
    assert TraceContext.from_wire(ctx.to_wire()).trace_id == ctx.trace_id
    for garbage in (None, 3, "x", [], {}, {"trace_id": "a"},
                    {"trace_id": "", "span_id": "b"},
                    {"trace_id": 1, "span_id": 2}):
        assert TraceContext.from_wire(garbage) is None


# ---------------------------------------------------------------------------
# spans and parenting
# ---------------------------------------------------------------------------

def test_span_parenting_explicit_and_contextual():
    tracer = Tracer()
    root = tracer.start("root")
    child = tracer.start("child", parent=root)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id

    remote = tracer.start("remote", parent=child.context())
    assert remote.trace_id == root.trace_id
    assert remote.parent_id == child.span_id

    with tracer.start("active") as span:
        assert active_span() is span
        nested = maybe_span("nested")
        assert isinstance(nested, Span)
        assert nested.parent_id == span.span_id
        nested.finish()
    assert active_span() is None


def test_finish_is_idempotent_and_records_once():
    tracer = Tracer()
    span = tracer.start("once")
    span.finish()
    span.finish()
    assert len(tracer.spans()) == 1


def test_span_attrs_and_annotations():
    tracer = Tracer()
    with tracer.start("s", attrs={"kind": "rate"}) as span:
        span.set_attr("seqno", 9)
        span.annotate("fault", {"site": "wal.append"})
        span.annotate("fault", {"site": "wal.fsync"})
        annotate_active("replayed_seqno", 3)
    entry = tracer.spans()[-1]
    assert entry["attrs"]["kind"] == "rate"
    assert entry["attrs"]["seqno"] == 9
    assert [f["site"] for f in entry["attrs"]["fault"]] \
        == ["wal.append", "wal.fsync"]
    assert entry["attrs"]["replayed_seqno"] == [3]


def test_exiting_span_on_error_records_the_error_attr():
    tracer = Tracer()
    try:
        with tracer.start("boom"):
            raise ValueError("no")
    except ValueError:
        pass
    entry = tracer.spans()[-1]
    assert entry["attrs"]["error"] == repr(ValueError("no"))


def test_active_span_is_thread_local():
    tracer = Tracer()
    seen = {}

    def worker():
        seen["other"] = active_span()

    with tracer.start("mine"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["other"] is None


def test_helpers_are_no_ops_without_a_tracer():
    # No active span: maybe_span yields the shared null span, and both
    # annotate helpers silently do nothing.
    span = maybe_span("nothing", n=1)
    assert span is NULL_SPAN
    with span as inner:
        inner.set_attr("a", 1)
        inner.annotate("b", 2)
        annotate_active("c", 3)
    span.finish()


# ---------------------------------------------------------------------------
# collection: ring buffer, drain, sink
# ---------------------------------------------------------------------------

def test_ring_buffer_evicts_oldest_and_counts():
    tracer = Tracer(capacity=4)
    for index in range(10):
        tracer.emit(f"s{index}")
    spans = tracer.spans()
    assert [span["name"] for span in spans] == ["s6", "s7", "s8", "s9"]
    assert tracer.spans(limit=2)[0]["name"] == "s8"
    stats = tracer.stats()
    assert stats["finished"] == 10
    assert stats["evicted"] == 6
    assert tracer.drain() == spans
    assert tracer.spans() == []


def test_emit_returns_the_recorded_entry():
    tracer = Tracer()
    parent = tracer.start("p")
    entry = tracer.emit("queue", parent=parent, dur_ms=1.5,
                        attrs={"class": "read"})
    assert entry["parent_id"] == parent.span_id
    assert entry["dur_ms"] == 1.5
    assert entry["attrs"]["class"] == "read"


def test_jsonl_sink_survives_ring_eviction(tmp_path):
    with Tracer(capacity=2, sink_dir=str(tmp_path),
                sink_name="trace-test.jsonl") as tracer:
        for index in range(6):
            tracer.emit(f"s{index}")
        assert len(tracer.spans()) == 2
    lines = [json.loads(line) for line in
             (tmp_path / "trace-test.jsonl").read_text().splitlines()]
    assert [line["name"] for line in lines] == [f"s{i}" for i in range(6)]
