"""The injection shims under real components: sockets, WAL, workers.

Verifies each fault site does exactly what its action name says — and,
more importantly, that the stack's recovery contracts hold around them:
an injected WAL fault never leaves a partial record behind (the next
recovery is clean), an injected connect failure rides failover, and a
terminated shard worker respawns with bit-identical answers.
"""

from __future__ import annotations

import socket

import pytest

from repro.bench.serving import make_bench_snapshot
from repro.serving.chaos import (
    ChaosSocket,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FleetConductor,
)
from repro.serving.cluster import ClusterError, ShardedScorer
from repro.serving.net import ReplicaSet, ServingClient
from repro.serving.service import PredictionService
from repro.serving.wal.log import WalWriteError, WriteAheadLog
from repro.utils.validation import ValidationError

N_USERS, N_ITEMS, K = 40, 31, 4


@pytest.fixture(scope="module")
def snapshot():
    return make_bench_snapshot(N_USERS, N_ITEMS, K, seed=9)


def _injector(*events):
    return FaultInjector(FaultPlan(seed=0, events=list(events)))


# ---------------------------------------------------------------------------
# ChaosSocket
# ---------------------------------------------------------------------------

def test_chaos_socket_send_faults():
    left, right = socket.socketpair()
    try:
        chaos = ChaosSocket(left, _injector(
            FaultEvent("net.send", 2, "drop"),
            FaultEvent("net.send", 3, "reset")))
        chaos.sendall(b"hello")                  # step 1: untouched
        assert right.recv(64) == b"hello"
        chaos.sendall(b"vanishes")               # step 2: dropped
        right.settimeout(0.2)
        with pytest.raises(socket.timeout):
            right.recv(64)
        with pytest.raises(ConnectionResetError):
            chaos.sendall(b"boom")               # step 3: reset
    finally:
        left.close()
        right.close()


def test_chaos_socket_slow_read_degrades_to_single_bytes():
    left, right = socket.socketpair()
    try:
        chaos = ChaosSocket(left, _injector(
            FaultEvent("net.recv", 2, "slow")))
        right.sendall(b"abcdef")
        assert chaos.recv(64) == b"abcdef"       # step 1: untouched
        right.sendall(b"xyz")
        assert chaos.recv(64) == b"x"            # step 2 on: one byte
        assert chaos.recv(64) == b"y"
        assert chaos.recv(64) == b"z"
    finally:
        left.close()
        right.close()


def test_chaos_socket_dropped_reply_times_out_never_hangs():
    left, right = socket.socketpair()
    try:
        left.settimeout(0.2)
        chaos = ChaosSocket(left, _injector(
            FaultEvent("net.recv", 1, "drop")))
        right.sendall(b"the reply")
        with pytest.raises(socket.timeout):
            chaos.recv(64)
    finally:
        left.close()
        right.close()


def test_chaos_socket_drop_without_timeout_resets_instead():
    left, right = socket.socketpair()
    try:
        chaos = ChaosSocket(left, _injector(
            FaultEvent("net.recv", 1, "drop")))
        with pytest.raises(ConnectionResetError):
            chaos.recv(64)  # no timeout to wait out: reset, never hang
    finally:
        left.close()
        right.close()


# ---------------------------------------------------------------------------
# WAL fault sites
# ---------------------------------------------------------------------------

def test_wal_faults_roll_back_to_pre_append_state(tmp_path):
    """Torn writes (twice in a row — pinning the rollback-position fix)
    and a failed fsync all leave the log exactly as before the append;
    the next recovery sees a clean segment."""
    injector = _injector(
        FaultEvent("wal.append", 1, "torn"),
        FaultEvent("wal.append", 2, "torn"),
        FaultEvent("wal.fsync", 1, "fail"))
    log = WriteAheadLog(tmp_path, sync_every=1, fault_injector=injector)
    with pytest.raises(WalWriteError, match="torn"):
        log.append({"kind": "x", "i": 1})
    with pytest.raises(WalWriteError, match="torn"):
        log.append({"kind": "x", "i": 2})
    assert log.high_seqno == 0 and list(log.records()) == []
    with pytest.raises(WalWriteError, match="fsync"):
        log.append({"kind": "x", "i": 3})
    assert log.high_seqno == 0
    # The fault budget is exhausted; the next append lands as seqno 1.
    assert log.append({"kind": "x", "i": 4}) == 1
    assert log.stats()["injected_faults"] == 3
    log.close()

    recovered = WriteAheadLog(tmp_path)
    assert recovered.high_seqno == 1
    assert [record.payload["i"] for record in recovered.records()] == [4]
    assert recovered.stats()["recovered"] == 1
    recovered.close()


def test_wal_enospc_writes_no_bytes(tmp_path):
    injector = _injector(FaultEvent("wal.append", 2, "enospc"))
    log = WriteAheadLog(tmp_path, sync_every=1, fault_injector=injector)
    log.append({"kind": "x", "i": 1})
    segment = next(tmp_path.iterdir())
    size_before = segment.stat().st_size
    with pytest.raises(WalWriteError, match="ENOSPC"):
        log.append({"kind": "x", "i": 2})
    assert segment.stat().st_size == size_before
    assert log.append({"kind": "x", "i": 3}) == 2
    log.close()


def test_wal_faults_apply_to_in_memory_logs_too():
    injector = _injector(FaultEvent("wal.append", 1, "torn"))
    log = WriteAheadLog(None, fault_injector=injector)
    with pytest.raises(WalWriteError):
        log.append({"kind": "x", "i": 1})
    assert log.high_seqno == 0
    assert log.append({"kind": "x", "i": 2}) == 1
    log.close()


# ---------------------------------------------------------------------------
# worker and fleet chaos hooks
# ---------------------------------------------------------------------------

def test_kill_worker_raises_once_then_respawns_bit_identically(snapshot):
    with ShardedScorer(snapshot, n_shards=2) as scorer:
        expected = scorer.top_n(3, n=5)
        scorer.kill_worker(0)
        with pytest.raises(ClusterError):
            scorer.top_n(3, n=5)
        served = scorer.top_n(3, n=5)  # the pool respawned lazily
        assert expected.items.tolist() == served.items.tolist()
        assert expected.scores.tobytes() == served.scores.tobytes()
        with pytest.raises(ValidationError):
            scorer.kill_worker(99)


def test_injected_connect_failure_rides_failover(snapshot):
    injector = _injector(FaultEvent("net.connect", 1, "fail"))
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        reference = PredictionService(snapshot)
        with ServingClient(replicas.addresses, cooldown=0.05,
                           fault_injector=injector) as client:
            served = client.top_n(0, n=5)  # first connect dies, fails over
            assert served.items.tolist() == \
                reference.top_n(0, n=5).items.tolist()
            assert client.n_failovers == 1
            assert injector.log[0]["site"] == "net.connect"


def test_injected_reset_mid_stream_fails_over_reads(snapshot):
    injector = _injector(FaultEvent("net.recv", 3, "reset"))
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        reference = PredictionService(snapshot)
        with ServingClient(replicas.addresses, cooldown=0.05,
                           fault_injector=injector) as client:
            for user in range(6):  # one of these reads eats the reset
                served = client.top_n(user, n=5)
                assert served.items.tolist() == \
                    reference.top_n(user, n=5).items.tolist()
            assert injector.stats()["triggered"] == 1


def test_fleet_conductor_pause_and_kill(snapshot):
    plan = FaultPlan.generate(seed=4, n_events=0, n_replicas=2,
                              n_fleet_events=2, fleet_span=1.0)
    assert plan.fleet
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=2) as replicas:
        conductor = FleetConductor(replicas, plan.fleet)
        conductor.start()
        log = conductor.finish(timeout=30.0)
        assert len(log) >= len(plan.fleet)
        # Every kill has a matching restart, and the fleet is whole.
        kills = sum(1 for entry in log if entry["action"] == "kill")
        restarts = sum(1 for entry in log if entry["action"] == "restart")
        assert kills == restarts
        assert len(replicas.addresses) == 2
        with ServingClient(replicas.addresses) as client:
            assert len(client.top_n(0, n=5)) == 5


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
