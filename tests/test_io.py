"""Unit tests for rating-matrix serialization (text and npz formats)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.io import (
    load_ratings_npz,
    load_ratings_text,
    load_split_npz,
    save_ratings_npz,
    save_ratings_text,
    save_split_npz,
)
from repro.sparse.split import train_test_split
from repro.utils.validation import ValidationError


def assert_matrices_equal(a, b):
    assert a.shape == b.shape
    assert a.nnz == b.nnz
    np.testing.assert_allclose(np.nan_to_num(a.to_dense()),
                               np.nan_to_num(b.to_dense()))


class TestTextFormat:
    def test_roundtrip(self, simple_ratings, tmp_path):
        path = tmp_path / "ratings.txt"
        save_ratings_text(simple_ratings, path, comment="hand-written fixture")
        loaded = load_ratings_text(path)
        assert_matrices_equal(simple_ratings, loaded)

    def test_comment_lines_preserved_in_file(self, simple_ratings, tmp_path):
        path = tmp_path / "ratings.txt"
        save_ratings_text(simple_ratings, path, comment="line one\nline two")
        text = path.read_text()
        assert "% line one" in text and "% line two" in text

    def test_roundtrip_preserves_exact_values(self, tmp_path, small_dataset):
        path = tmp_path / "ratings.txt"
        save_ratings_text(small_dataset.ratings, path)
        loaded = load_ratings_text(path)
        np.testing.assert_array_equal(loaded.triplets()[2],
                                      small_dataset.ratings.triplets()[2])

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("3 3 1\n0 0 1.0\n")
        with pytest.raises(ValidationError):
            load_ratings_text(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "short.txt"
        path.write_text("%%repro-ratings coordinate\n3 3 2\n0 0 1.0\n")
        with pytest.raises(ValidationError):
            load_ratings_text(path)

    def test_extra_triplets_rejected(self, tmp_path):
        path = tmp_path / "long.txt"
        path.write_text("%%repro-ratings coordinate\n3 3 1\n0 0 1.0\n1 1 2.0\n")
        with pytest.raises(ValidationError):
            load_ratings_text(path)

    def test_malformed_size_line_rejected(self, tmp_path):
        path = tmp_path / "bad_size.txt"
        path.write_text("%%repro-ratings coordinate\n3 3\n")
        with pytest.raises(ValidationError):
            load_ratings_text(path)

    def test_empty_matrix_roundtrip(self, tmp_path):
        from repro.sparse.csr import RatingMatrix
        empty = RatingMatrix.from_arrays(5, 4, [], [], [])
        path = tmp_path / "empty.txt"
        save_ratings_text(empty, path)
        loaded = load_ratings_text(path)
        assert loaded.shape == (5, 4)
        assert loaded.nnz == 0


class TestNpzFormat:
    def test_roundtrip(self, simple_ratings, tmp_path):
        path = tmp_path / "ratings.npz"
        save_ratings_npz(simple_ratings, path)
        assert_matrices_equal(simple_ratings, load_ratings_npz(path))

    def test_wrong_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, format=np.array("something-else"))
        with pytest.raises(ValidationError):
            load_ratings_npz(path)

    def test_split_roundtrip(self, small_dataset, tmp_path):
        split = train_test_split(small_dataset.ratings, test_fraction=0.25, seed=1)
        path = tmp_path / "split.npz"
        save_split_npz(split, path)
        loaded = load_split_npz(path)
        assert_matrices_equal(split.train, loaded.train)
        np.testing.assert_array_equal(loaded.test_users, split.test_users)
        np.testing.assert_array_equal(loaded.test_values, split.test_values)

    def test_split_wrong_archive_rejected(self, simple_ratings, tmp_path):
        path = tmp_path / "ratings.npz"
        save_ratings_npz(simple_ratings, path)
        with pytest.raises(ValidationError):
            load_split_npz(path)

    def test_loaded_split_usable_for_training(self, small_dataset, tmp_path):
        from repro.core import BPMFConfig, GibbsSampler
        split = train_test_split(small_dataset.ratings, test_fraction=0.2, seed=2)
        path = tmp_path / "split.npz"
        save_split_npz(split, path)
        loaded = load_split_npz(path)
        result = GibbsSampler(BPMFConfig(num_latent=3, burn_in=1, n_samples=2)).run(
            loaded.train, loaded, seed=0)
        assert result.final_rmse > 0
