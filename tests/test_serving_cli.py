"""End-to-end tests of the ``python -m repro.serving`` command line."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.serving.__main__ import main
from repro.serving.checkpoint import load_snapshot


@pytest.fixture(scope="module")
def trained_snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "model.npz"
    code = main(["train", "--snapshot", str(path),
                 "--users", "60", "--movies", "40", "--num-latent", "4",
                 "--burn-in", "2", "--n-samples", "3",
                 "--checkpoint-every", "2"])
    assert code == 0
    return path


def test_train_writes_a_valid_snapshot(trained_snapshot, capsys):
    snapshot = load_snapshot(trained_snapshot)
    assert snapshot.state.iteration == 5
    assert snapshot.mean_count == 3
    assert snapshot.rng_state is not None


def test_train_resume_continues_the_chain(trained_snapshot, tmp_path, capsys):
    out = tmp_path / "longer.npz"
    code = main(["train", "--snapshot", str(out),
                 "--resume", str(trained_snapshot),
                 "--users", "60", "--movies", "40", "--num-latent", "4",
                 "--burn-in", "2", "--n-samples", "5"])
    assert code == 0
    assert load_snapshot(out).state.iteration == 7
    assert "final posterior-mean RMSE" in capsys.readouterr().out


def test_train_multicore_backend(tmp_path, capsys):
    out = tmp_path / "mc.npz"
    code = main(["train", "--snapshot", str(out), "--backend", "multicore",
                 "--threads", "2", "--users", "40", "--movies", "30",
                 "--num-latent", "3", "--burn-in", "1", "--n-samples", "2"])
    assert code == 0
    assert load_snapshot(out).state.iteration == 3


def test_info_reports_the_snapshot(trained_snapshot, capsys):
    assert main(["info", "--snapshot", str(trained_snapshot)]) == 0
    out = capsys.readouterr().out
    assert "60 users x 40 movies" in out
    assert "resumable: True" in out


def test_query_pairs_and_top(trained_snapshot, capsys):
    code = main(["query", "--snapshot", str(trained_snapshot),
                 "--user", "0", "--top", "3", "--pairs", "0:1", "2:7"])
    assert code == 0
    out = capsys.readouterr().out
    assert out.count("predict") == 2
    assert out.count("top 0 #") == 3
    # Every printed score parses as a finite float.
    scores = [float(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
    assert np.isfinite(scores).all()


def test_query_without_arguments_errors(trained_snapshot, capsys):
    assert main(["query", "--snapshot", str(trained_snapshot)]) == 2


def test_serve_line_protocol(trained_snapshot, capsys, monkeypatch):
    commands = "predict 0 1\ntop 0 3\nfoldin 0:4.5 1:3.0\npredict 60 2\nbogus\nquit\n"
    monkeypatch.setattr("sys.stdin", io.StringIO(commands))
    assert main(["serve", "--snapshot", str(trained_snapshot)]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("serving 60 users x 40 items")
    assert np.isfinite(float(lines[1]))          # predict 0 1
    assert len(lines[2].split()) == 3            # top 0 3
    assert lines[3] == "user 60"                 # fold-in id
    assert np.isfinite(float(lines[4]))          # predict for folded user
    assert lines[5].startswith("error:")         # unknown command reported


def test_train_with_shared_engine(tmp_path, capsys):
    out = tmp_path / "shared.npz"
    code = main(["train", "--snapshot", str(out), "--engine", "shared",
                 "--workers", "2", "--users", "40", "--movies", "30",
                 "--num-latent", "3", "--burn-in", "1", "--n-samples", "2"])
    assert code == 0
    assert load_snapshot(out).state.iteration == 3


def test_train_engines_sample_the_same_chain(tmp_path, capsys):
    """--engine shared must write a bit-identical snapshot to --engine batched."""
    batched, shared = tmp_path / "b.npz", tmp_path / "s.npz"
    common = ["--users", "40", "--movies", "30", "--num-latent", "3",
              "--burn-in", "1", "--n-samples", "2"]
    assert main(["train", "--snapshot", str(batched),
                 "--engine", "batched"] + common) == 0
    assert main(["train", "--snapshot", str(shared),
                 "--engine", "shared", "--workers", "2"] + common) == 0
    left, right = load_snapshot(batched), load_snapshot(shared)
    np.testing.assert_array_equal(left.state.user_factors,
                                  right.state.user_factors)
    np.testing.assert_array_equal(left.state.movie_factors,
                                  right.state.movie_factors)


def test_serve_sharded_gateway(trained_snapshot, capsys, monkeypatch):
    commands = ("predict 0 1\ntop 0 3\nfoldin 0:4.5 1:3.0\nrate 60 2:4.0\n"
                "stats\nquit\n")
    monkeypatch.setattr("sys.stdin", io.StringIO(commands))
    assert main(["serve", "--snapshot", str(trained_snapshot),
                 "--shards", "2"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert "2-shard gateway" in lines[0]
    assert np.isfinite(float(lines[1]))          # predict 0 1
    assert len(lines[2].split()) == 3            # top 0 3
    assert lines[3] == "user 60"                 # fold-in id
    assert lines[4] == "user 60 updated"         # incremental update
    assert '"n_shards": 2' in lines[5]           # stats JSON


def test_serve_watch_requires_shards(trained_snapshot, capsys, monkeypatch):
    monkeypatch.setattr("sys.stdin", io.StringIO("quit\n"))
    assert main(["serve", "--snapshot", str(trained_snapshot),
                 "--watch"]) == 2


def test_serve_tcp_rejects_malformed_hostport(trained_snapshot, capsys):
    for bad in ("localhost", "::1", "127.0.0.1:http"):
        assert main(["serve", "--snapshot", str(trained_snapshot),
                     "--tcp", bad]) == 2
        assert "HOST:PORT" in capsys.readouterr().err
    assert main(["serve", "--snapshot", str(trained_snapshot),
                 "--tcp", "127.0.0.1:99999"]) == 2
    assert "0-65535" in capsys.readouterr().err
    assert main(["serve", "--snapshot", str(trained_snapshot),
                 "--tcp", "127.0.0.1:7031", "--replicas", "0"]) == 2
    assert ">= 1" in capsys.readouterr().err
    assert main(["serve", "--snapshot", str(trained_snapshot),
                 "--tcp", "127.0.0.1:65535", "--replicas", "2"]) == 2
    assert "65535" in capsys.readouterr().err


def test_smoke_command(capsys):
    assert main(["smoke"]) == 0
    assert "SMOKE OK" in capsys.readouterr().out


def test_cluster_smoke_command(tmp_path, capsys):
    latency = tmp_path / "latency.json"
    assert main(["cluster-smoke", "--latency-out", str(latency)]) == 0
    assert "CLUSTER SMOKE OK" in capsys.readouterr().out
    import json
    payload = json.loads(latency.read_text())
    assert payload["benchmark"] == "serving-cluster-smoke"
    assert payload["swaps"] == 1 and payload["parity_queries"] > 0
