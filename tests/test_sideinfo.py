"""Tests for the Macau-style side-information extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.sideinfo import MacauGibbsSampler, SideInfo, sample_link_matrix
from repro.datasets.synthetic import make_low_rank_dataset
from repro.sparse.csr import RatingMatrix
from repro.sparse.split import RatingSplit
from repro.utils.validation import ValidationError


def make_feature_informed_dataset(seed=0, n_users=80, n_movies=60, n_features=4,
                                  density=0.15, noise_std=0.2):
    """A dataset whose movie factors are exactly a linear map of features."""
    rng = np.random.default_rng(seed)
    k = n_features
    movie_features = rng.normal(size=(n_movies, n_features))
    link = rng.normal(size=(n_features, k)) / np.sqrt(n_features)
    movie_factors = movie_features @ link
    user_factors = rng.normal(size=(n_users, k)) / np.sqrt(k)

    n_cells = n_users * n_movies
    nnz = int(density * n_cells)
    flat = rng.choice(n_cells, size=nnz, replace=False)
    users = flat // n_movies
    movies = flat % n_movies
    values = (np.einsum("ij,ij->i", user_factors[users], movie_factors[movies])
              + rng.normal(scale=noise_std, size=nnz))
    ratings = RatingMatrix.from_arrays(n_users, n_movies, users, movies, values)
    return ratings, movie_features, user_factors, movie_factors


class TestSideInfoDataclass:
    def test_shape_checks(self):
        with pytest.raises(ValidationError):
            SideInfo(features=np.zeros(5))
        with pytest.raises(Exception):
            SideInfo(features=np.zeros((5, 2)), lambda_link=0.0)

    def test_properties(self):
        side = SideInfo(features=np.zeros((7, 3)))
        assert side.n_entities == 7 and side.n_features == 3


class TestSampleLinkMatrix:
    def test_shape_and_determinism(self, rng):
        factors = rng.normal(size=(50, 4))
        side = SideInfo(features=rng.normal(size=(50, 6)))
        a = sample_link_matrix(factors, np.zeros(4), np.eye(4), side, rng=1)
        b = sample_link_matrix(factors, np.zeros(4), np.eye(4), side, rng=1)
        assert a.shape == (6, 4)
        np.testing.assert_array_equal(a, b)

    def test_recovers_known_link_with_much_data(self):
        rng = np.random.default_rng(0)
        n, f, k = 4000, 3, 2
        features = rng.normal(size=(n, f))
        true_link = np.array([[1.0, -0.5], [0.0, 2.0], [0.5, 0.5]])
        factors = features @ true_link + rng.normal(scale=0.05, size=(n, k))
        side = SideInfo(features=features, lambda_link=1.0)
        draws = np.array([
            sample_link_matrix(factors, np.zeros(k), np.eye(k) * 400.0, side, rng=rng)
            for _ in range(20)
        ])
        np.testing.assert_allclose(draws.mean(axis=0), true_link, atol=0.05)

    def test_strong_prior_shrinks_to_zero(self, rng):
        factors = rng.normal(size=(60, 3))
        side = SideInfo(features=rng.normal(size=(60, 4)), lambda_link=1e8)
        link = sample_link_matrix(factors, np.zeros(3), np.eye(3), side, rng=0)
        assert np.abs(link).max() < 0.05

    def test_mismatched_rows_rejected(self, rng):
        side = SideInfo(features=rng.normal(size=(10, 2)))
        with pytest.raises(ValidationError):
            sample_link_matrix(rng.normal(size=(12, 3)), np.zeros(3), np.eye(3), side)


class TestMacauSampler:
    def test_equals_plain_bpmf_without_side_info(self, tiny_dataset, tiny_config):
        plain = GibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                              tiny_dataset.split, seed=4)
        macau = MacauGibbsSampler(tiny_config).run(tiny_dataset.split.train,
                                                   tiny_dataset.split, seed=4)
        np.testing.assert_allclose(macau.state.user_factors,
                                   plain.state.user_factors)
        assert macau.final_rmse == pytest.approx(plain.final_rmse)

    def test_side_information_improves_cold_start(self):
        """Movies with zero training ratings are predicted from features."""
        ratings, movie_features, _, _ = make_feature_informed_dataset(seed=1)
        # Hold out *every* rating of a handful of movies -> cold-start items.
        cold_movies = np.array([0, 7, 13, 21])
        users, movies, values = ratings.triplets()
        is_cold = np.isin(movies, cold_movies)
        train = RatingMatrix.from_arrays(ratings.n_users, ratings.n_movies,
                                         users[~is_cold], movies[~is_cold],
                                         values[~is_cold])
        split = RatingSplit(train=train, test_users=users[is_cold],
                            test_movies=movies[is_cold],
                            test_values=values[is_cold])
        config = BPMFConfig(num_latent=4, burn_in=6, n_samples=12, alpha=10.0)

        plain = GibbsSampler(config).run(train, split, seed=0)
        macau = MacauGibbsSampler(
            config, movie_side=SideInfo(movie_features, lambda_link=2.0)
        ).run(train, split, seed=0)

        assert macau.final_rmse < plain.final_rmse
        # And the improvement is substantial, not noise-level.
        assert macau.final_rmse < 0.8 * plain.final_rmse

    def test_warm_accuracy_not_hurt_by_side_info(self):
        ratings, movie_features, _, _ = make_feature_informed_dataset(seed=2)
        from repro.sparse.split import train_test_split
        split = train_test_split(ratings, test_fraction=0.2, seed=3)
        config = BPMFConfig(num_latent=4, burn_in=5, n_samples=10, alpha=10.0)
        plain = GibbsSampler(config).run(split.train, split, seed=0)
        macau = MacauGibbsSampler(
            config, movie_side=SideInfo(movie_features, lambda_link=2.0)
        ).run(split.train, split, seed=0)
        assert macau.final_rmse < 1.2 * plain.final_rmse

    def test_user_side_information_also_supported(self, rng):
        data = make_low_rank_dataset(n_users=50, n_movies=40, rank=3,
                                     density=0.25, seed=5)
        user_features = rng.normal(size=(50, 3))
        config = BPMFConfig(num_latent=3, burn_in=2, n_samples=4)
        result = MacauGibbsSampler(
            config, user_side=SideInfo(user_features)
        ).run(data.split.train, data.split, seed=0)
        assert np.isfinite(result.final_rmse)

    def test_cold_start_means_accessor(self):
        ratings, movie_features, _, _ = make_feature_informed_dataset(seed=3)
        config = BPMFConfig(num_latent=4, burn_in=2, n_samples=3, alpha=10.0)
        sampler = MacauGibbsSampler(
            config, movie_side=SideInfo(movie_features, lambda_link=2.0))
        with pytest.raises(ValidationError):
            sampler.cold_start_means("movies")
        sampler.run(ratings, None, seed=0)
        means = sampler.cold_start_means("movies")
        assert means.shape == (ratings.n_movies, 4)
        with pytest.raises(ValidationError):
            sampler.cold_start_means("users")

    def test_mismatched_feature_rows_rejected(self, tiny_dataset, tiny_config, rng):
        sampler = MacauGibbsSampler(
            tiny_config, movie_side=SideInfo(rng.normal(size=(5, 2))))
        with pytest.raises(ValidationError):
            sampler.run(tiny_dataset.split.train, tiny_dataset.split, seed=0)
