"""Unit tests for train/test splitting and the reordering utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix
from repro.sparse.reorder import (
    apply_permutation,
    balanced_block_order,
    bandwidth,
    bipartite_rcm,
    degree_order,
    identity_order,
    reverse_cuthill_mckee,
)
from repro.sparse.split import train_test_split
from repro.utils.validation import ValidationError


class TestTrainTestSplit:
    def test_partitions_all_entries(self, small_dataset):
        ratings = small_dataset.ratings
        split = train_test_split(ratings, test_fraction=0.25, seed=3)
        assert split.train.nnz + split.n_test == ratings.nnz

    def test_fraction_respected_approximately(self, small_dataset):
        ratings = small_dataset.ratings
        split = train_test_split(ratings, test_fraction=0.3, seed=3,
                                 keep_coverage=False)
        assert split.n_test == pytest.approx(0.3 * ratings.nnz, rel=0.02)

    def test_no_overlap_between_train_and_test(self, simple_ratings):
        split = train_test_split(simple_ratings, test_fraction=0.4, seed=0)
        train_cells = set(zip(*split.train.triplets()[:2]))
        test_cells = set(zip(split.test_users, split.test_movies))
        assert not train_cells & test_cells

    def test_keep_coverage_leaves_no_empty_rows_or_columns(self, small_dataset):
        ratings = small_dataset.ratings
        split = train_test_split(ratings, test_fraction=0.5, seed=1,
                                 keep_coverage=True)
        assert (split.train.user_degrees() > 0).all()
        assert (split.train.movie_degrees() > 0).all()

    def test_deterministic_given_seed(self, simple_ratings):
        a = train_test_split(simple_ratings, test_fraction=0.4, seed=7)
        b = train_test_split(simple_ratings, test_fraction=0.4, seed=7)
        np.testing.assert_array_equal(a.test_users, b.test_users)
        np.testing.assert_array_equal(a.test_movies, b.test_movies)

    def test_zero_fraction(self, simple_ratings):
        split = train_test_split(simple_ratings, test_fraction=0.0)
        assert split.n_test == 0
        assert split.train.nnz == simple_ratings.nnz

    def test_invalid_fraction(self, simple_ratings):
        with pytest.raises(ValidationError):
            train_test_split(simple_ratings, test_fraction=1.5)

    def test_empty_matrix(self):
        empty = RatingMatrix.from_arrays(3, 3, [], [], [])
        split = train_test_split(empty, test_fraction=0.2)
        assert split.n_test == 0

    def test_test_triplets_accessor(self, simple_ratings):
        split = train_test_split(simple_ratings, test_fraction=0.4, seed=1)
        users, movies, values = split.test_triplets()
        assert users.shape == movies.shape == values.shape


class TestSimpleOrders:
    def test_identity_order(self):
        np.testing.assert_array_equal(identity_order(4), [0, 1, 2, 3])

    def test_degree_order_descending(self):
        perm = degree_order(np.array([1, 5, 3]))
        # element 1 (degree 5) must map to the first position
        assert perm[1] == 0
        assert perm[0] == 2

    def test_degree_order_ascending(self):
        perm = degree_order(np.array([1, 5, 3]), descending=False)
        assert perm[0] == 0
        assert perm[1] == 2

    def test_degree_order_is_permutation(self):
        perm = degree_order(np.array([4, 4, 1, 9, 0]))
        assert sorted(perm.tolist()) == [0, 1, 2, 3, 4]

    def test_apply_permutation(self):
        values = np.array([10.0, 20.0, 30.0])
        perm = np.array([2, 0, 1])
        out = apply_permutation(values, perm)
        np.testing.assert_array_equal(out, [20.0, 30.0, 10.0])

    def test_apply_permutation_length_mismatch(self):
        with pytest.raises(ValidationError):
            apply_permutation(np.arange(3), np.array([0, 1]))


class TestReverseCuthillMckee:
    def _block_diagonal_shuffled(self, seed=0):
        """Two disconnected user/movie communities, randomly relabelled."""
        rng = np.random.default_rng(seed)
        triplets = []
        for block, (users, movies) in enumerate([(range(0, 10), range(0, 8)),
                                                 (range(10, 20), range(8, 16))]):
            for u in users:
                for m in movies:
                    if rng.random() < 0.4:
                        triplets.append((u, m, 1.0))
        matrix = RatingMatrix.from_coo(CooMatrix.from_triplets(20, 16, triplets))
        user_shuffle = rng.permutation(20)
        movie_shuffle = rng.permutation(16)
        return matrix.permute(user_shuffle, movie_shuffle)

    def test_returns_valid_permutations(self, simple_ratings):
        user_perm, movie_perm = reverse_cuthill_mckee(simple_ratings)
        assert sorted(user_perm.tolist()) == list(range(4))
        assert sorted(movie_perm.tolist()) == list(range(3))

    def test_reduces_bandwidth_of_shuffled_block_matrix(self):
        shuffled = self._block_diagonal_shuffled()
        user_perm, movie_perm = reverse_cuthill_mckee(shuffled)
        reordered = shuffled.permute(user_perm, movie_perm)
        assert bandwidth(reordered) < bandwidth(shuffled)

    def test_scipy_path_matches_quality(self):
        shuffled = self._block_diagonal_shuffled(seed=3)
        user_perm, movie_perm = bipartite_rcm(shuffled, large_threshold=1)
        reordered = shuffled.permute(user_perm, movie_perm)
        assert bandwidth(reordered) < bandwidth(shuffled)

    def test_bipartite_rcm_dispatch_small(self, simple_ratings):
        user_perm, movie_perm = bipartite_rcm(simple_ratings, large_threshold=10**6)
        assert sorted(user_perm.tolist()) == list(range(4))
        assert sorted(movie_perm.tolist()) == list(range(3))

    def test_handles_isolated_items(self):
        matrix = RatingMatrix.from_arrays(5, 4, [0, 1], [0, 1], [1.0, 1.0])
        user_perm, movie_perm = reverse_cuthill_mckee(matrix)
        assert sorted(user_perm.tolist()) == list(range(5))
        assert sorted(movie_perm.tolist()) == list(range(4))


class TestBandwidth:
    def test_empty_matrix(self):
        assert bandwidth(RatingMatrix.from_arrays(3, 3, [], [], [])) == 0.0

    def test_diagonal_is_low_antidiagonal_is_high(self):
        n = 10
        diag = RatingMatrix.from_arrays(n, n, np.arange(n), np.arange(n), np.ones(n))
        anti = RatingMatrix.from_arrays(n, n, np.arange(n), np.arange(n)[::-1],
                                        np.ones(n))
        assert bandwidth(diag) < bandwidth(anti)


class TestBalancedBlockOrder:
    def test_blocks_are_contiguous(self):
        costs = np.ones(10)
        blocks = balanced_block_order(costs, 3)
        assert (np.diff(blocks) >= 0).all()
        assert blocks.min() == 0 and blocks.max() == 2

    def test_uniform_costs_balanced(self):
        blocks = balanced_block_order(np.ones(12), 4)
        sizes = np.bincount(blocks)
        assert sizes.max() - sizes.min() <= 1

    def test_skewed_costs_balanced_by_cost(self):
        costs = np.array([10.0, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        blocks = balanced_block_order(costs, 2)
        totals = np.bincount(blocks, weights=costs)
        # The heavy element should end up alone-ish; balance within 2x.
        assert totals.max() / totals.min() < 2.5

    def test_every_block_nonempty(self):
        blocks = balanced_block_order(np.ones(7), 3)
        assert set(blocks.tolist()) == {0, 1, 2}

    def test_more_blocks_than_items(self):
        blocks = balanced_block_order(np.ones(3), 5)
        assert blocks.shape == (3,)
        assert blocks.max() < 5

    def test_empty_costs(self):
        assert balanced_block_order(np.array([]), 2).shape == (0,)

    def test_invalid_block_count(self):
        with pytest.raises(ValidationError):
            balanced_block_order(np.ones(3), 0)
