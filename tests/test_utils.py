"""Unit tests for repro.utils (rng, timing, tables, validation, logging)."""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.utils.logging import get_logger, set_verbosity
from repro.utils.rng import RngRegistry, as_generator, spawn_generators
from repro.utils.tables import Table, format_float, render_table
from repro.utils.timing import Stopwatch, Timer, time_call
from repro.utils.validation import (
    ValidationError,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
    check_shape,
)


# ---------------------------------------------------------------------------
# rng
# ---------------------------------------------------------------------------

class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(42).standard_normal(5)
        b = as_generator(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).standard_normal(5)
        b = as_generator(2).standard_normal(5)
        assert not np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        gen = as_generator(seq)
        assert isinstance(gen, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(0, 5)
        assert len(children) == 5

    def test_children_are_independent_streams(self):
        children = spawn_generators(0, 3)
        draws = [child.standard_normal(8) for child in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        first = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        second = [g.standard_normal(4) for g in spawn_generators(9, 2)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_spawn_from_generator(self):
        root = np.random.default_rng(3)
        children = spawn_generators(root, 2)
        assert len(children) == 2

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=1)
        assert registry.get("a") is registry.get("a")

    def test_streams_depend_only_on_seed_and_name(self):
        r1 = RngRegistry(seed=5)
        r2 = RngRegistry(seed=5)
        # Create in different orders; streams must still match by name.
        r1.get("x")
        a = r1.get("y").standard_normal(4)
        b = r2.get("y").standard_normal(4)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        registry = RngRegistry(seed=5)
        a = registry.get("a").standard_normal(4)
        b = registry.get("b").standard_normal(4)
        assert not np.allclose(a, b)

    def test_reset_single(self):
        registry = RngRegistry(seed=0)
        first = registry.get("s").standard_normal(3)
        registry.reset("s")
        again = registry.get("s").standard_normal(3)
        np.testing.assert_array_equal(first, again)

    def test_reset_all_and_names(self):
        registry = RngRegistry(seed=0)
        registry.get("a")
        registry.get("b")
        assert set(registry.names()) == {"a", "b"}
        registry.reset()
        assert set(registry.names()) == set()


# ---------------------------------------------------------------------------
# timing
# ---------------------------------------------------------------------------

class TestStopwatch:
    def test_measures_elapsed_time(self):
        watch = Stopwatch().start()
        time.sleep(0.01)
        assert watch.stop() >= 0.009

    def test_accumulates_over_segments(self):
        watch = Stopwatch()
        watch.start(); time.sleep(0.005); watch.stop()
        watch.start(); time.sleep(0.005); total = watch.stop()
        assert total >= 0.009

    def test_double_start_raises(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_context_manager(self):
        with Stopwatch() as watch:
            time.sleep(0.002)
        assert watch.elapsed >= 0.001

    def test_reset(self):
        watch = Stopwatch()
        watch.start(); watch.stop()
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running


class TestTimer:
    def test_add_and_total(self):
        timer = Timer()
        timer.add("compute", 1.0)
        timer.add("compute", 0.5)
        assert timer.total("compute") == pytest.approx(1.5)
        assert timer.mean("compute") == pytest.approx(0.75)

    def test_missing_name_is_zero(self):
        assert Timer().total("nothing") == 0.0
        assert Timer().mean("nothing") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timer().add("x", -1.0)

    def test_measure_context(self):
        timer = Timer()
        with timer.measure("block"):
            time.sleep(0.002)
        assert timer.total("block") >= 0.001
        assert timer.counts["block"] == 1

    def test_merge(self):
        a = Timer(); a.add("x", 1.0)
        b = Timer(); b.add("x", 2.0); b.add("y", 3.0)
        merged = a.merge(b)
        assert merged.total("x") == pytest.approx(3.0)
        assert merged.total("y") == pytest.approx(3.0)
        # operands untouched
        assert a.total("x") == pytest.approx(1.0)

    def test_as_dict(self):
        timer = Timer()
        timer.add("a", 1.0)
        assert timer.as_dict() == {"a": 1.0}


class TestTimeCall:
    def test_returns_result_and_positive_time(self):
        seconds, result = time_call(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0

    def test_repeats_take_minimum(self):
        calls = []

        def slow_then_fast():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.01)
            return len(calls)

        seconds, result = time_call(slow_then_fast, repeats=3)
        assert result == 3
        assert seconds < 0.01

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(sum, [1], repeats=0)


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------

class TestFormatFloat:
    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_small_uses_scientific(self):
        assert "e" in format_float(1.23e-7)

    def test_mid_range_plain(self):
        assert "e" not in format_float(12.5)


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bbbb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        # all data lines have the same width
        assert len(lines[2]) == len(lines[3]) == len(lines[4])

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_float_cells_formatted(self):
        text = render_table(["x"], [[0.000123456]])
        assert "0.0001235" in text or "1.235e-04" in text


class TestTable:
    def test_add_row_and_column(self):
        table = Table(["n", "value"])
        table.add_row(1, 2.0).add_row(2, 3.0)
        assert table.column("value") == [2.0, 3.0]

    def test_add_row_arity_checked(self):
        with pytest.raises(ValueError):
            Table(["a"]).add_row(1, 2)

    def test_unknown_column(self):
        with pytest.raises(ValueError):
            Table(["a"]).column("b")

    def test_render_roundtrip(self):
        table = Table(["name"], title="hello")
        table.add_row("x")
        assert "hello" in table.render()
        assert "x" in str(table)


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------

class TestValidation:
    def test_check_positive_accepts(self):
        check_positive("x", 1)
        check_positive("x", 0.5)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive("x", value)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValidationError):
            check_non_negative("x", -1e-9)

    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_check_probability_accepts(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_check_probability_rejects(self, value):
        with pytest.raises(ValidationError):
            check_probability("p", value)

    def test_check_shape_exact_and_wildcard(self):
        check_shape("m", np.zeros((3, 4)), (3, 4))
        check_shape("m", np.zeros((3, 4)), (-1, 4))
        with pytest.raises(ValidationError):
            check_shape("m", np.zeros((3, 4)), (4, 3))
        with pytest.raises(ValidationError):
            check_shape("m", np.zeros(3), (3, 1))

    def test_check_in(self):
        check_in("mode", "a", ("a", "b"))
        with pytest.raises(ValidationError):
            check_in("mode", "c", ("a", "b"))

    def test_validation_error_is_value_error(self):
        assert issubclass(ValidationError, ValueError)


# ---------------------------------------------------------------------------
# logging
# ---------------------------------------------------------------------------

class TestLogging:
    def test_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core.gibbs").name == "repro.core.gibbs"
        assert get_logger("repro.mpi").name == "repro.mpi"

    def test_set_verbosity_levels(self):
        logger = set_verbosity("warning")
        assert logger.level == logging.WARNING
        logger = set_verbosity(logging.DEBUG)
        assert logger.level == logging.DEBUG

    def test_set_verbosity_installs_single_handler(self):
        set_verbosity("info")
        set_verbosity("info")
        handlers = logging.getLogger("repro").handlers
        assert len(handlers) == 1
