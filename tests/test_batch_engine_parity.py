"""Parity harness: the batched engine must match the per-item reference.

Every test feeds both engines identical inputs and identical pre-drawn
noise and requires factor-for-factor agreement to floating-point
tolerance.  This is the contract that lets later scaling PRs refactor the
hot path fearlessly: as long as this file passes, an execution-strategy
change has not changed the sampled chain.
"""

from __future__ import annotations

import gc

import numpy as np
import pytest

from repro.core.batch_engine import (
    BatchedUpdateEngine,
    ReferenceUpdateEngine,
    available_engines,
    make_update_engine,
)
from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.shared_engine import SharedMemoryUpdateEngine, WorkerPoolError
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.sparse.buckets import (
    build_bucket_plan,
    cached_bucket_plan,
    fuse_bucket_plan,
)
from repro.sparse.csr import CompressedAxis, RatingMatrix
from repro.utils.validation import ValidationError

#: Engine-vs-engine tolerance.  The two paths share per-item arithmetic up
#: to the solver used (``cho_solve`` vs LU), so they agree far tighter than
#: this in practice; the bound leaves room for other BLAS builds.
TOL = dict(rtol=1e-7, atol=1e-9)


def _random_axis(rng, n_items, n_source, degrees) -> CompressedAxis:
    """A compressed axis with the requested per-item degrees."""
    degrees = np.asarray(degrees, dtype=np.int64)
    assert degrees.shape[0] == n_items
    indptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
    nnz = int(indptr[-1])
    return CompressedAxis(
        indptr=indptr,
        indices=rng.integers(0, n_source, size=nnz).astype(np.int64),
        values=rng.normal(size=nnz),
    )


def _run_both(axis, n_source, k, method=None, policy=None, items=None, seed=0):
    """Run one phase through both engines on identical inputs."""
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(n_source, k))
    prior = GaussianPrior(mean=rng.normal(size=k),
                          precision=np.eye(k) * rng.uniform(0.5, 3.0))
    noise = rng.standard_normal((axis.n, k))
    outputs = []
    for engine_cls in (ReferenceUpdateEngine, BatchedUpdateEngine):
        engine = engine_cls(update_method=method, policy=policy)
        target = np.zeros((axis.n, k))
        engine.update_items(target, source, axis, prior, 2.0, noise,
                            items=items)
        outputs.append(target)
    return outputs


class TestPhaseParity:
    """Engine-level parity on one phase over crafted sparsity patterns."""

    @pytest.mark.parametrize("k", [1, 8, 32])
    @pytest.mark.parametrize("method", [None, UpdateMethod.RANK_ONE,
                                        UpdateMethod.SERIAL_CHOLESKY,
                                        UpdateMethod.PARALLEL_CHOLESKY])
    def test_mixed_degrees_all_methods(self, k, method):
        """Heterogeneous degrees spanning all three policy regimes."""
        rng = np.random.default_rng(7)
        # Policy with tiny thresholds so every regime is exercised cheaply.
        policy = HybridUpdatePolicy(parallel_threshold=12,
                                    rank_one_threshold=4, block_grain=5)
        degrees = rng.integers(0, 25, size=30)
        axis = _random_axis(rng, 30, 40, degrees)
        reference, batched = _run_both(axis, 40, k, method=method,
                                       policy=policy, seed=k)
        np.testing.assert_allclose(batched, reference, **TOL)

    @pytest.mark.parametrize("k", [1, 8, 32])
    def test_degenerate_shapes(self, k):
        """Items with zero ratings and single-rating items."""
        rng = np.random.default_rng(3)
        degrees = np.array([0, 1, 0, 1, 1, 0, 2, 0])
        axis = _random_axis(rng, 8, 10, degrees)
        reference, batched = _run_both(axis, 10, k, seed=k + 100)
        np.testing.assert_allclose(batched, reference, **TOL)
        # Zero-degree items draw from the bare prior — still finite rows.
        assert np.isfinite(batched).all()

    def test_all_items_zero_degree(self):
        """An entirely empty axis (no ratings at all)."""
        rng = np.random.default_rng(5)
        axis = _random_axis(rng, 6, 4, np.zeros(6, dtype=np.int64))
        reference, batched = _run_both(axis, 4, 8)
        np.testing.assert_allclose(batched, reference, **TOL)

    def test_subset_items_match_full_plan_rows(self):
        """Distributed-style subsets produce the same rows as the full plan."""
        rng = np.random.default_rng(11)
        degrees = rng.integers(0, 15, size=24)
        axis = _random_axis(rng, 24, 30, degrees)
        subset = np.array([1, 4, 5, 9, 17, 23])

        full_ref, full_bat = _run_both(axis, 30, 8, seed=42)
        sub_ref, sub_bat = _run_both(axis, 30, 8, items=subset, seed=42)
        np.testing.assert_allclose(sub_bat[subset], sub_ref[subset], **TOL)
        # Subset rows are bitwise identical to the full-plan rows: stacked
        # LAPACK applies one routine per slice, so an item's sample cannot
        # depend on which other items share its bucket.
        np.testing.assert_array_equal(sub_bat[subset], full_bat[subset])
        # Non-subset rows were never touched.
        untouched = np.setdiff1d(np.arange(24), subset)
        assert (sub_bat[untouched] == 0).all()

    def test_noise_rows_consumed_by_global_item_id(self):
        """Item ``i`` consumes ``noise[i]`` regardless of bucket order."""
        rng = np.random.default_rng(2)
        degrees = np.array([3, 1, 3, 1])  # buckets: {1,3} items interleaved
        axis = _random_axis(rng, 4, 6, degrees)
        source = rng.normal(size=(6, 5))
        prior = GaussianPrior.standard(5)
        noise = rng.standard_normal((4, 5))
        engine = BatchedUpdateEngine()
        base = np.zeros((4, 5))
        engine.update_items(base, source, axis, prior, 2.0, noise)
        # Perturbing one item's noise row changes only that item's sample.
        noise2 = noise.copy()
        noise2[2] += 1.0
        perturbed = np.zeros((4, 5))
        BatchedUpdateEngine().update_items(perturbed, source, axis, prior,
                                           2.0, noise2)
        assert not np.allclose(perturbed[2], base[2])
        np.testing.assert_array_equal(perturbed[[0, 1, 3]], base[[0, 1, 3]])


class TestSamplerParity:
    """Full-sweep parity through the sequential sampler."""

    @pytest.fixture(scope="class")
    def data(self):
        return make_low_rank_dataset(SyntheticConfig(
            n_users=50, n_movies=35, rank=3, density=0.3, noise_std=0.25,
            test_fraction=0.2, seed=77))

    @pytest.mark.parametrize("k", [1, 8, 32])
    def test_sweep_parity(self, data, k):
        """Two sweeps, same seed: identical factors to float tolerance."""
        config = BPMFConfig(num_latent=k, burn_in=1, n_samples=1, alpha=4.0)
        ref = GibbsSampler(config, SamplerOptions(engine="reference")).run(
            data.split.train, data.split, seed=5)
        bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
            data.split.train, data.split, seed=5)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(bat.state.movie_factors,
                                   ref.state.movie_factors, rtol=1e-6, atol=1e-8)
        assert bat.final_rmse == pytest.approx(ref.final_rmse, rel=1e-6)

    @pytest.mark.parametrize("method", list(UpdateMethod))
    def test_sweep_parity_forced_methods(self, data, method):
        config = BPMFConfig(num_latent=8, burn_in=0, n_samples=1, alpha=4.0)
        ref = GibbsSampler(config, SamplerOptions(
            engine="reference", update_method=method)).run(
            data.split.train, data.split, seed=1)
        bat = GibbsSampler(config, SamplerOptions(
            engine="batched", update_method=method)).run(
            data.split.train, data.split, seed=1)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)

    def test_rows_with_no_ratings_in_matrix(self):
        """A rating matrix containing empty users and single-rating movies."""
        matrix = RatingMatrix.from_arrays(
            5, 4,
            np.array([0, 0, 2, 2, 4]), np.array([0, 1, 1, 2, 3]),
            np.array([4.0, 3.0, 2.0, 5.0, 1.0]))
        assert (matrix.user_degrees() == 0).any()
        assert (matrix.movie_degrees() == 1).any()
        config = BPMFConfig(num_latent=4, burn_in=0, n_samples=1, alpha=2.0)
        ref = GibbsSampler(config, SamplerOptions(engine="reference")).run(
            matrix, seed=0)
        bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
            matrix, seed=0)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)
        assert np.isfinite(bat.state.user_factors).all()


class TestEngineSelection:
    def test_available_engines(self):
        assert set(available_engines()) == {"reference", "batched", "shared"}

    def test_default_engine_is_batched(self):
        assert SamplerOptions().engine == "batched"
        assert isinstance(GibbsSampler().engine, BatchedUpdateEngine)

    def test_unknown_engine_rejected_with_engine_list(self):
        with pytest.raises(ValidationError) as excinfo:
            make_update_engine("vectorised-harder")
        message = str(excinfo.value)
        for name in available_engines():
            assert name in message
        with pytest.raises(ValidationError):
            GibbsSampler(options=SamplerOptions(engine="nope"))

    def test_n_workers_rejected_for_in_process_engines(self):
        with pytest.raises(ValidationError):
            make_update_engine("batched", n_workers=2)
        with pytest.raises(ValidationError):
            make_update_engine("reference", n_workers=2)

    def test_reference_engine_rejects_float32(self):
        with pytest.raises(ValidationError):
            make_update_engine("reference", compute_dtype="float32")

    def test_invalid_compute_dtype_rejected(self):
        with pytest.raises(ValidationError):
            make_update_engine("batched", compute_dtype="float16")

    def test_bucket_plan_cached_per_axis_and_subset(self):
        rng = np.random.default_rng(0)
        axis = _random_axis(rng, 10, 12, rng.integers(0, 5, size=10))
        engine = BatchedUpdateEngine()
        plan_a = engine._plan_for(axis, None)
        plan_b = engine._plan_for(axis, None)
        assert plan_a is plan_b
        subset = np.array([1, 2, 3])
        plan_c = engine._plan_for(axis, subset)
        assert plan_c is not plan_a
        assert plan_c is engine._plan_for(axis, subset.copy())

    def test_bucket_plan_shared_across_engines_and_sweeps(self):
        """The plan cache is per axis identity, not per engine instance."""
        rng = np.random.default_rng(8)
        axis = _random_axis(rng, 12, 9, rng.integers(0, 6, size=12))
        plan_direct = cached_bucket_plan(axis)
        engine_a, engine_b = BatchedUpdateEngine(), BatchedUpdateEngine()
        assert engine_a._plan_for(axis, None) is plan_direct
        assert engine_b._plan_for(axis, None) is plan_direct
        # Repeated sweeps of one engine keep hitting the same object.
        assert engine_a._plan_for(axis, None) is plan_direct
        # Distinct value dtypes are distinct plans (float32 gathers).
        plan_f32 = cached_bucket_plan(axis, value_dtype=np.float32)
        assert plan_f32 is not plan_direct
        assert plan_f32.buckets[-1].values.dtype == np.float32

    def test_bucket_plan_cache_invalidated_on_axis_change(self):
        """A new axis object — even with identical content — replans."""
        rng = np.random.default_rng(21)
        degrees = rng.integers(0, 5, size=10)

        def make_axis(seed):
            return _random_axis(np.random.default_rng(seed), 10, 12, degrees)

        axis = make_axis(3)
        plan_old = cached_bucket_plan(axis)
        del axis
        gc.collect()  # finalizer evicts the dead axis's entries (id reuse safe)
        fresh = make_axis(3)
        plan_new = cached_bucket_plan(fresh)
        assert plan_new is not plan_old


class TestSuperBuckets:
    """Degree-padded fusion must repartition the plan without changing it."""

    def _plan(self, seed=5, n_items=40, n_source=30, high=20):
        rng = np.random.default_rng(seed)
        axis = _random_axis(rng, n_items, n_source,
                            rng.integers(0, high, size=n_items))
        return build_bucket_plan(axis)

    def test_fusion_covers_every_item_exactly_once(self):
        plan = self._plan()
        fused = fuse_bucket_plan(plan, num_latent=8)
        covered = np.concatenate([sb.items for sb in fused.super_buckets])
        original = np.concatenate([b.items for b in plan.buckets])
        assert sorted(covered.tolist()) == sorted(original.tolist())
        assert fused.n_planned_items == plan.n_planned_items

    def test_member_slices_reproduce_exact_degree_blocks(self):
        """Slicing a member back out yields the unpadded bucket arrays."""
        plan = self._plan(seed=9)
        fused = fuse_bucket_plan(plan, num_latent=8)
        by_degree = {}
        for super_bucket in fused.super_buckets:
            for member in super_bucket.members:
                rows = slice(member.row_offset,
                             member.row_offset + member.n_items)
                by_degree.setdefault(member.degree, []).append((
                    super_bucket.items[rows],
                    super_bucket.neighbours[rows, :member.degree],
                    super_bucket.values[rows, :member.degree],
                ))
                # Padding beyond the member degree is exactly zero.
                assert (super_bucket.neighbours[rows, member.degree:] == 0).all()
                assert (super_bucket.values[rows, member.degree:] == 0.0).all()
        for bucket in plan.buckets:
            pieces = by_degree[bucket.degree]
            items = np.concatenate([p[0] for p in pieces])
            neighbours = np.concatenate([p[1] for p in pieces])
            values = np.concatenate([p[2] for p in pieces])
            order = np.argsort(items)
            np.testing.assert_array_equal(items[order], bucket.items)
            np.testing.assert_array_equal(neighbours[order], bucket.neighbours)
            np.testing.assert_array_equal(values[order], bucket.values)

    def test_large_bucket_split_into_chunks(self):
        """One dominant degree cannot serialise a phase on one worker."""
        rng = np.random.default_rng(2)
        axis = _random_axis(rng, 64, 50, np.full(64, 7))  # one huge bucket
        plan = build_bucket_plan(axis)
        assert plan.n_buckets == 1
        fused = fuse_bucket_plan(plan, num_latent=8, n_tasks_hint=8)
        assert fused.n_super_buckets > 1
        assert fused.n_planned_items == 64

    def test_padding_waste_is_bounded(self):
        plan = self._plan(seed=13, n_items=60, high=30)
        fused = fuse_bucket_plan(plan, num_latent=8, max_pad_ratio=0.25)
        for super_bucket in fused.super_buckets:
            padded = super_bucket.n_items * super_bucket.pad_degree
            real = sum(member.n_items * member.degree
                       for member in super_bucket.members)
            if padded:
                assert (padded - real) / padded <= 0.25 + 1e-9

    def test_worker_assignment_deterministic_and_complete(self):
        plan = self._plan(seed=4)
        fused = fuse_bucket_plan(plan, num_latent=8)
        assignment = fused.assign_workers(3)
        again = fused.assign_workers(3)
        assert assignment == again
        flat = sorted(i for worker in assignment for i in worker)
        assert flat == list(range(fused.n_super_buckets))


class TestSharedEngine:
    """The process backend must be bit-identical to the batched engine."""

    def _inputs(self, seed=7, n_items=50, n_source=35, k=8, high=25):
        rng = np.random.default_rng(seed)
        axis = _random_axis(rng, n_items, n_source,
                            rng.integers(0, high, size=n_items))
        source = rng.normal(size=(n_source, k))
        prior = GaussianPrior(mean=rng.normal(size=k),
                              precision=np.eye(k) * rng.uniform(0.5, 2.0))
        noise = rng.standard_normal((n_items, k))
        return axis, source, prior, noise

    def test_phase_bit_parity_vs_batched(self):
        axis, source, prior, noise = self._inputs()
        batched = np.zeros_like(noise)
        BatchedUpdateEngine().update_items(batched, source, axis, prior,
                                           2.0, noise)
        with make_update_engine("shared", n_workers=2) as engine:
            shared = np.zeros_like(noise)
            engine.update_items(shared, source, axis, prior, 2.0, noise)
            # Pool and plans persist across phases: a second pass reuses
            # both and still matches.
            repeat = np.zeros_like(noise)
            engine.update_items(repeat, source, axis, prior, 2.0, noise)
        np.testing.assert_array_equal(shared, batched)
        np.testing.assert_array_equal(repeat, batched)

    def test_subset_bit_parity(self):
        """Distributed-style subsets match the batched rows bitwise."""
        axis, source, prior, noise = self._inputs(seed=11)
        subset = np.array([0, 3, 8, 21, 40, 49])
        batched = np.zeros_like(noise)
        BatchedUpdateEngine().update_items(batched, source, axis, prior,
                                           2.0, noise)
        with make_update_engine("shared", n_workers=2) as engine:
            shared = np.zeros_like(noise)
            engine.update_items(shared, source, axis, prior, 2.0, noise,
                                items=subset)
        np.testing.assert_array_equal(shared[subset], batched[subset])
        untouched = np.setdiff1d(np.arange(noise.shape[0]), subset)
        assert (shared[untouched] == 0).all()

    def test_full_sweep_chain_bit_parity(self):
        """GibbsSampler(engine="shared") reproduces the batched chain."""
        data = make_low_rank_dataset(SyntheticConfig(
            n_users=40, n_movies=30, rank=3, density=0.3, noise_std=0.25,
            test_fraction=0.2, seed=31))
        config = BPMFConfig(num_latent=8, burn_in=1, n_samples=2, alpha=4.0)
        batched = GibbsSampler(config, SamplerOptions(engine="batched")).run(
            data.split.train, data.split, seed=5)
        shared = GibbsSampler(config, SamplerOptions(
            engine="shared", n_workers=2)).run(
            data.split.train, data.split, seed=5)
        np.testing.assert_array_equal(shared.state.user_factors,
                                      batched.state.user_factors)
        np.testing.assert_array_equal(shared.state.movie_factors,
                                      batched.state.movie_factors)
        assert shared.rmse_per_sample == batched.rmse_per_sample

    def test_float32_mode_tolerance_parity(self):
        """float32 kernels track the float64 chain to single precision,
        and the shared float32 path is bit-identical to batched float32."""
        axis, source, prior, noise = self._inputs(seed=19)
        exact = np.zeros_like(noise)
        BatchedUpdateEngine().update_items(exact, source, axis, prior,
                                           2.0, noise)
        narrowed = np.zeros_like(noise)
        BatchedUpdateEngine(compute_dtype="float32").update_items(
            narrowed, source, axis, prior, 2.0, noise)
        np.testing.assert_allclose(narrowed, exact, rtol=5e-3, atol=5e-4)
        assert not np.array_equal(narrowed, exact)  # genuinely narrowed
        with make_update_engine("shared", n_workers=2,
                                compute_dtype="float32") as engine:
            shared = np.zeros_like(noise)
            engine.update_items(shared, source, axis, prior, 2.0, noise)
        np.testing.assert_array_equal(shared, narrowed)

    def test_worker_error_propagates_and_engine_recovers(self):
        """A worker-side failure raises, tears down, and stays usable."""
        axis, source, prior, noise = self._inputs(seed=23)
        engine = make_update_engine("shared", n_workers=2)
        try:
            good = np.zeros_like(noise)
            engine.update_items(good, source, axis, prior, 2.0, noise)
            segment_names = self._segment_names(engine)
            assert segment_names  # plan + factor blocks exist
            bad_axis = CompressedAxis(
                indptr=np.array([0, 2]),
                indices=np.array([source.shape[0] + 5,
                                  source.shape[0] + 6]),  # out of range
                values=np.array([1.0, 2.0]))
            with pytest.raises(WorkerPoolError):
                engine.update_items(np.zeros((1, noise.shape[1])), source,
                                    bad_axis, prior, 2.0,
                                    noise[:1])
            # The failed phase tore the pool down and unlinked everything.
            self._assert_unlinked(segment_names)
            assert not engine.pool_running
            # ... and the engine rebuilds lazily and still matches.
            again = np.zeros_like(noise)
            engine.update_items(again, source, axis, prior, 2.0, noise)
            np.testing.assert_array_equal(again, good)
        finally:
            engine.close()

    def test_kill_mid_sweep_unlinks_shared_memory(self):
        """SIGKILLing a worker between phases must not leak segments."""
        axis, source, prior, noise = self._inputs(seed=29)
        engine = make_update_engine("shared", n_workers=2)
        try:
            target = np.zeros_like(noise)
            engine.update_items(target, source, axis, prior, 2.0, noise)
            segment_names = self._segment_names(engine)
            victim = engine._workers[0][0]
            victim.kill()
            victim.join(timeout=5.0)
            with pytest.raises(WorkerPoolError):
                engine.update_items(np.zeros_like(noise), source, axis,
                                    prior, 2.0, noise)
            self._assert_unlinked(segment_names)
            assert not engine.pool_running
        finally:
            engine.close()

    def test_recycled_axis_id_cannot_serve_stale_phase_plan(self):
        """The phase-plan cache checks axis identity, not just id().

        Forges the failure a recycled ``id()`` would produce — a cache
        entry whose key matches a *different* axis object — and asserts
        the engine rebuilds instead of sampling from the old dataset's
        shared-memory gathers.
        """
        axis_a, source, prior, noise = self._inputs(seed=41)
        rng = np.random.default_rng(43)
        axis_b = CompressedAxis(indptr=axis_a.indptr.copy(),
                                indices=axis_a.indices.copy(),
                                values=rng.normal(size=axis_a.nnz))
        expected = np.zeros_like(noise)
        BatchedUpdateEngine().update_items(expected, source, axis_b, prior,
                                           2.0, noise)
        with make_update_engine("shared", n_workers=2) as engine:
            engine.update_items(np.zeros_like(noise), source, axis_a, prior,
                                2.0, noise)
            stale_entry = next(iter(engine._phase_plans.values()))
            forged_key = (id(axis_b), None, prior.num_latent)
            engine._phase_plans = {forged_key: stale_entry}
            shared = np.zeros_like(noise)
            engine.update_items(shared, source, axis_b, prior, 2.0, noise)
        np.testing.assert_array_equal(shared, expected)

    def test_close_is_idempotent_and_context_managed(self):
        axis, source, prior, noise = self._inputs(seed=37)
        with make_update_engine("shared", n_workers=2) as engine:
            engine.update_items(np.zeros_like(noise), source, axis, prior,
                                2.0, noise)
            segment_names = self._segment_names(engine)
        self._assert_unlinked(segment_names)
        engine.close()  # second close is a no-op
        assert not engine.pool_running

    @staticmethod
    def _segment_names(engine: SharedMemoryUpdateEngine):
        names = [block.name for block in engine._factor_blocks.values()]
        for _, plan in engine._phase_plans.values():
            names.extend(block.name for block in plan.blocks)
        return names

    @staticmethod
    def _assert_unlinked(segment_names):
        from multiprocessing import shared_memory
        for name in segment_names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestBucketPlan:
    def test_plan_partitions_items_exactly(self):
        rng = np.random.default_rng(9)
        degrees = rng.integers(0, 6, size=20)
        axis = _random_axis(rng, 20, 15, degrees)
        plan = build_bucket_plan(axis)
        covered = np.concatenate([b.items for b in plan.buckets])
        assert sorted(covered.tolist()) == list(range(20))
        for bucket in plan.buckets:
            assert bucket.neighbours.shape == (bucket.n_items, bucket.degree)
            assert bucket.values.shape == (bucket.n_items, bucket.degree)
            np.testing.assert_array_equal(
                np.diff(axis.indptr)[bucket.items], bucket.degree)

    def test_plan_gathers_match_slices(self):
        rng = np.random.default_rng(13)
        axis = _random_axis(rng, 12, 9, rng.integers(0, 7, size=12))
        plan = build_bucket_plan(axis)
        for bucket in plan.buckets:
            for row, item in enumerate(bucket.items):
                idx, values = axis.slice(int(item))
                np.testing.assert_array_equal(bucket.neighbours[row], idx)
                np.testing.assert_array_equal(bucket.values[row], values)

    def test_plan_rejects_bad_subsets(self):
        rng = np.random.default_rng(1)
        axis = _random_axis(rng, 5, 5, rng.integers(0, 3, size=5))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([0, 0]))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([7]))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([[0, 1]]))
