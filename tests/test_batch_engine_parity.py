"""Parity harness: the batched engine must match the per-item reference.

Every test feeds both engines identical inputs and identical pre-drawn
noise and requires factor-for-factor agreement to floating-point
tolerance.  This is the contract that lets later scaling PRs refactor the
hot path fearlessly: as long as this file passes, an execution-strategy
change has not changed the sampled chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_engine import (
    BatchedUpdateEngine,
    ReferenceUpdateEngine,
    available_engines,
    make_update_engine,
)
from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig, GaussianPrior
from repro.core.updates import HybridUpdatePolicy, UpdateMethod
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.sparse.buckets import build_bucket_plan
from repro.sparse.csr import CompressedAxis, RatingMatrix
from repro.utils.validation import ValidationError

#: Engine-vs-engine tolerance.  The two paths share per-item arithmetic up
#: to the solver used (``cho_solve`` vs LU), so they agree far tighter than
#: this in practice; the bound leaves room for other BLAS builds.
TOL = dict(rtol=1e-7, atol=1e-9)


def _random_axis(rng, n_items, n_source, degrees) -> CompressedAxis:
    """A compressed axis with the requested per-item degrees."""
    degrees = np.asarray(degrees, dtype=np.int64)
    assert degrees.shape[0] == n_items
    indptr = np.concatenate([[0], np.cumsum(degrees)]).astype(np.int64)
    nnz = int(indptr[-1])
    return CompressedAxis(
        indptr=indptr,
        indices=rng.integers(0, n_source, size=nnz).astype(np.int64),
        values=rng.normal(size=nnz),
    )


def _run_both(axis, n_source, k, method=None, policy=None, items=None, seed=0):
    """Run one phase through both engines on identical inputs."""
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(n_source, k))
    prior = GaussianPrior(mean=rng.normal(size=k),
                          precision=np.eye(k) * rng.uniform(0.5, 3.0))
    noise = rng.standard_normal((axis.n, k))
    outputs = []
    for engine_cls in (ReferenceUpdateEngine, BatchedUpdateEngine):
        engine = engine_cls(update_method=method, policy=policy)
        target = np.zeros((axis.n, k))
        engine.update_items(target, source, axis, prior, 2.0, noise,
                            items=items)
        outputs.append(target)
    return outputs


class TestPhaseParity:
    """Engine-level parity on one phase over crafted sparsity patterns."""

    @pytest.mark.parametrize("k", [1, 8, 32])
    @pytest.mark.parametrize("method", [None, UpdateMethod.RANK_ONE,
                                        UpdateMethod.SERIAL_CHOLESKY,
                                        UpdateMethod.PARALLEL_CHOLESKY])
    def test_mixed_degrees_all_methods(self, k, method):
        """Heterogeneous degrees spanning all three policy regimes."""
        rng = np.random.default_rng(7)
        # Policy with tiny thresholds so every regime is exercised cheaply.
        policy = HybridUpdatePolicy(parallel_threshold=12,
                                    rank_one_threshold=4, block_grain=5)
        degrees = rng.integers(0, 25, size=30)
        axis = _random_axis(rng, 30, 40, degrees)
        reference, batched = _run_both(axis, 40, k, method=method,
                                       policy=policy, seed=k)
        np.testing.assert_allclose(batched, reference, **TOL)

    @pytest.mark.parametrize("k", [1, 8, 32])
    def test_degenerate_shapes(self, k):
        """Items with zero ratings and single-rating items."""
        rng = np.random.default_rng(3)
        degrees = np.array([0, 1, 0, 1, 1, 0, 2, 0])
        axis = _random_axis(rng, 8, 10, degrees)
        reference, batched = _run_both(axis, 10, k, seed=k + 100)
        np.testing.assert_allclose(batched, reference, **TOL)
        # Zero-degree items draw from the bare prior — still finite rows.
        assert np.isfinite(batched).all()

    def test_all_items_zero_degree(self):
        """An entirely empty axis (no ratings at all)."""
        rng = np.random.default_rng(5)
        axis = _random_axis(rng, 6, 4, np.zeros(6, dtype=np.int64))
        reference, batched = _run_both(axis, 4, 8)
        np.testing.assert_allclose(batched, reference, **TOL)

    def test_subset_items_match_full_plan_rows(self):
        """Distributed-style subsets produce the same rows as the full plan."""
        rng = np.random.default_rng(11)
        degrees = rng.integers(0, 15, size=24)
        axis = _random_axis(rng, 24, 30, degrees)
        subset = np.array([1, 4, 5, 9, 17, 23])

        full_ref, full_bat = _run_both(axis, 30, 8, seed=42)
        sub_ref, sub_bat = _run_both(axis, 30, 8, items=subset, seed=42)
        np.testing.assert_allclose(sub_bat[subset], sub_ref[subset], **TOL)
        # Subset rows are bitwise identical to the full-plan rows: stacked
        # LAPACK applies one routine per slice, so an item's sample cannot
        # depend on which other items share its bucket.
        np.testing.assert_array_equal(sub_bat[subset], full_bat[subset])
        # Non-subset rows were never touched.
        untouched = np.setdiff1d(np.arange(24), subset)
        assert (sub_bat[untouched] == 0).all()

    def test_noise_rows_consumed_by_global_item_id(self):
        """Item ``i`` consumes ``noise[i]`` regardless of bucket order."""
        rng = np.random.default_rng(2)
        degrees = np.array([3, 1, 3, 1])  # buckets: {1,3} items interleaved
        axis = _random_axis(rng, 4, 6, degrees)
        source = rng.normal(size=(6, 5))
        prior = GaussianPrior.standard(5)
        noise = rng.standard_normal((4, 5))
        engine = BatchedUpdateEngine()
        base = np.zeros((4, 5))
        engine.update_items(base, source, axis, prior, 2.0, noise)
        # Perturbing one item's noise row changes only that item's sample.
        noise2 = noise.copy()
        noise2[2] += 1.0
        perturbed = np.zeros((4, 5))
        BatchedUpdateEngine().update_items(perturbed, source, axis, prior,
                                           2.0, noise2)
        assert not np.allclose(perturbed[2], base[2])
        np.testing.assert_array_equal(perturbed[[0, 1, 3]], base[[0, 1, 3]])


class TestSamplerParity:
    """Full-sweep parity through the sequential sampler."""

    @pytest.fixture(scope="class")
    def data(self):
        return make_low_rank_dataset(SyntheticConfig(
            n_users=50, n_movies=35, rank=3, density=0.3, noise_std=0.25,
            test_fraction=0.2, seed=77))

    @pytest.mark.parametrize("k", [1, 8, 32])
    def test_sweep_parity(self, data, k):
        """Two sweeps, same seed: identical factors to float tolerance."""
        config = BPMFConfig(num_latent=k, burn_in=1, n_samples=1, alpha=4.0)
        ref = GibbsSampler(config, SamplerOptions(engine="reference")).run(
            data.split.train, data.split, seed=5)
        bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
            data.split.train, data.split, seed=5)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)
        np.testing.assert_allclose(bat.state.movie_factors,
                                   ref.state.movie_factors, rtol=1e-6, atol=1e-8)
        assert bat.final_rmse == pytest.approx(ref.final_rmse, rel=1e-6)

    @pytest.mark.parametrize("method", list(UpdateMethod))
    def test_sweep_parity_forced_methods(self, data, method):
        config = BPMFConfig(num_latent=8, burn_in=0, n_samples=1, alpha=4.0)
        ref = GibbsSampler(config, SamplerOptions(
            engine="reference", update_method=method)).run(
            data.split.train, data.split, seed=1)
        bat = GibbsSampler(config, SamplerOptions(
            engine="batched", update_method=method)).run(
            data.split.train, data.split, seed=1)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)

    def test_rows_with_no_ratings_in_matrix(self):
        """A rating matrix containing empty users and single-rating movies."""
        matrix = RatingMatrix.from_arrays(
            5, 4,
            np.array([0, 0, 2, 2, 4]), np.array([0, 1, 1, 2, 3]),
            np.array([4.0, 3.0, 2.0, 5.0, 1.0]))
        assert (matrix.user_degrees() == 0).any()
        assert (matrix.movie_degrees() == 1).any()
        config = BPMFConfig(num_latent=4, burn_in=0, n_samples=1, alpha=2.0)
        ref = GibbsSampler(config, SamplerOptions(engine="reference")).run(
            matrix, seed=0)
        bat = GibbsSampler(config, SamplerOptions(engine="batched")).run(
            matrix, seed=0)
        np.testing.assert_allclose(bat.state.user_factors,
                                   ref.state.user_factors, rtol=1e-6, atol=1e-8)
        assert np.isfinite(bat.state.user_factors).all()


class TestEngineSelection:
    def test_available_engines(self):
        assert set(available_engines()) == {"reference", "batched"}

    def test_default_engine_is_batched(self):
        assert SamplerOptions().engine == "batched"
        assert isinstance(GibbsSampler().engine, BatchedUpdateEngine)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValidationError):
            make_update_engine("vectorised-harder")
        with pytest.raises(ValidationError):
            GibbsSampler(options=SamplerOptions(engine="nope"))

    def test_bucket_plan_cached_per_axis_and_subset(self):
        rng = np.random.default_rng(0)
        axis = _random_axis(rng, 10, 12, rng.integers(0, 5, size=10))
        engine = BatchedUpdateEngine()
        plan_a = engine._plan_for(axis, None)
        plan_b = engine._plan_for(axis, None)
        assert plan_a is plan_b
        subset = np.array([1, 2, 3])
        plan_c = engine._plan_for(axis, subset)
        assert plan_c is not plan_a
        assert plan_c is engine._plan_for(axis, subset.copy())


class TestBucketPlan:
    def test_plan_partitions_items_exactly(self):
        rng = np.random.default_rng(9)
        degrees = rng.integers(0, 6, size=20)
        axis = _random_axis(rng, 20, 15, degrees)
        plan = build_bucket_plan(axis)
        covered = np.concatenate([b.items for b in plan.buckets])
        assert sorted(covered.tolist()) == list(range(20))
        for bucket in plan.buckets:
            assert bucket.neighbours.shape == (bucket.n_items, bucket.degree)
            assert bucket.values.shape == (bucket.n_items, bucket.degree)
            np.testing.assert_array_equal(
                np.diff(axis.indptr)[bucket.items], bucket.degree)

    def test_plan_gathers_match_slices(self):
        rng = np.random.default_rng(13)
        axis = _random_axis(rng, 12, 9, rng.integers(0, 7, size=12))
        plan = build_bucket_plan(axis)
        for bucket in plan.buckets:
            for row, item in enumerate(bucket.items):
                idx, values = axis.slice(int(item))
                np.testing.assert_array_equal(bucket.neighbours[row], idx)
                np.testing.assert_array_equal(bucket.values[row], values)

    def test_plan_rejects_bad_subsets(self):
        rng = np.random.default_rng(1)
        axis = _random_axis(rng, 5, 5, rng.integers(0, 3, size=5))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([0, 0]))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([7]))
        with pytest.raises(ValidationError):
            build_bucket_plan(axis, np.array([[0, 1]]))
