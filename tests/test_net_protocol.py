"""Frame codec and shared line-protocol tests.

The codec is the single parser for both transports, so these tests pin
(1) exact round-trips for every message kind under arbitrary chunking,
(2) loud rejection of truncated/oversized/garbage frames, (3) the
protocol-version handshake refusal, and (4) a golden REPL transcript:
the refactored ``serve`` loop (parse_line → execute → format_reply) must
reproduce the historical ad-hoc loop's output bit-for-bit.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.__main__ import main
from repro.serving.net.protocol import (
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    ProtocolError,
    check_hello,
    encode_frame,
    execute,
    format_reply,
    hello_frame,
    parse_line,
)
from repro.serving.net.protocol import (
    _BINARY_FLAG,
    _HEADER,
    _KIND_CODES,
    _MAGIC,
    _encode_binary_payload,
)
from repro.serving.net.protocol import ENCODINGS, negotiated_encoding
from repro.serving.service import PredictionService

ALL_KINDS = sorted(_KIND_CODES)

_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=20))
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)
_payloads = st.dictionaries(st.text(max_size=12), _json_values, max_size=6)

# The binary encoder rejects the reserved "__nd__" marker key at *any*
# nesting depth (documented contract), so payloads destined for
# binary=True must exclude it everywhere, not just at the top level.
_marker_free_keys = st.text(max_size=8).filter(lambda key: key != "__nd__")
_marker_free_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_marker_free_keys, children, max_size=4)),
    max_leaves=12)
_marker_free_payloads = st.dictionaries(
    st.text(max_size=12).filter(lambda key: key != "__nd__"),
    _marker_free_values, max_size=6)


# ---------------------------------------------------------------------------
# round-trips
# ---------------------------------------------------------------------------

@settings(max_examples=200, deadline=None)
@given(kind=st.sampled_from(ALL_KINDS), payload=_payloads,
       cut=st.integers(min_value=0, max_value=10_000))
def test_round_trip_survives_arbitrary_chunking(kind, payload, cut):
    """encode → split at any byte → decode reproduces the frame exactly."""
    wire = encode_frame(Frame(kind, payload))
    decoder = FrameDecoder()
    first = wire[:cut % (len(wire) + 1)]
    frames = decoder.feed(first)
    frames += decoder.feed(wire[len(first):])
    assert len(frames) == 1
    assert frames[0].kind == kind
    assert frames[0].payload == payload
    assert frames[0].version == PROTOCOL_VERSION
    assert decoder.pending_bytes == 0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(ALL_KINDS), _payloads),
                min_size=1, max_size=5),
       st.integers(min_value=1, max_value=7))
def test_pipelined_frames_decode_in_order(messages, chunk):
    """Many frames in one stream come out in order, whatever the chunking."""
    wire = b"".join(encode_frame(Frame(kind, payload))
                    for kind, payload in messages)
    decoder = FrameDecoder()
    frames = []
    for start in range(0, len(wire), chunk):
        frames += decoder.feed(wire[start:start + chunk])
    assert [(frame.kind, frame.payload) for frame in frames] == messages


def test_scores_round_trip_bit_exactly():
    """JSON payloads preserve IEEE doubles exactly — the parity backbone."""
    scores = np.random.default_rng(3).standard_normal(64)
    scores[0] = 1e-308  # subnormal-adjacent
    scores[1] = np.nextafter(1.0, 2.0)
    wire = encode_frame(Frame("ok", {"scores": scores.tolist()}))
    frame = FrameDecoder().feed(wire)[0]
    assert np.asarray(frame.payload["scores"]).tobytes() == scores.tobytes()


# ---------------------------------------------------------------------------
# the binary array payload kind
# ---------------------------------------------------------------------------

_array_dtypes = st.sampled_from(["<f8", "<i8", "<f4", "<i4"])


@st.composite
def _ndarrays(draw):
    dtype = np.dtype(draw(_array_dtypes))
    shape = tuple(draw(st.lists(st.integers(min_value=0, max_value=5),
                                min_size=1, max_size=3)))
    count = int(np.prod(shape))
    if dtype.kind == "f":
        values = draw(st.lists(
            st.floats(allow_nan=False, width=32 if dtype.itemsize == 4
                      else 64),
            min_size=count, max_size=count))
    else:
        bound = 2 ** (8 * dtype.itemsize - 1) - 1
        values = draw(st.lists(
            st.integers(min_value=-bound, max_value=bound),
            min_size=count, max_size=count))
    return np.asarray(values, dtype=dtype).reshape(shape)


@settings(max_examples=100, deadline=None)
@given(kind=st.sampled_from(ALL_KINDS),
       arrays=st.lists(_ndarrays(), min_size=1, max_size=3),
       scalars=_marker_free_payloads,
       cut=st.integers(min_value=0, max_value=10_000))
def test_binary_round_trip_is_bit_exact(kind, arrays, scalars, cut):
    """ndarray payloads survive the binary wire form exactly, any chunking."""
    payload = dict(scalars)
    for index, array in enumerate(arrays):
        payload[f"array_{index}"] = array
    wire = encode_frame(Frame(kind, payload), binary=True)
    decoder = FrameDecoder()
    first = wire[:cut % (len(wire) + 1)]
    frames = decoder.feed(first) + decoder.feed(wire[len(first):])
    assert len(frames) == 1 and frames[0].kind == kind
    decoded = frames[0].payload
    for index, array in enumerate(arrays):
        out = decoded[f"array_{index}"]
        assert isinstance(out, np.ndarray)
        assert out.shape == array.shape
        assert out.dtype == array.dtype
        assert out.tobytes() == array.tobytes()
    for key, value in scalars.items():
        if key != "__nd__":
            assert decoded[key] == value
    assert decoder.pending_bytes == 0


def test_binary_and_json_frames_share_one_stream():
    """The binary flag is per frame: both forms interleave on one socket."""
    scores = np.random.default_rng(0).standard_normal(8)
    wire = (encode_frame(Frame("ok", {"scores": scores}), binary=True)
            + encode_frame(Frame("ok", {"scores": scores.tolist()}))
            + encode_frame(Frame("stats")))
    frames = FrameDecoder().feed(wire)
    assert len(frames) == 3
    assert frames[0].payload["scores"].tobytes() == scores.tobytes()
    assert np.asarray(frames[1].payload["scores"]).tobytes() \
        == scores.tobytes()


def test_hello_advertises_encodings_and_negotiation():
    hello = hello_frame()
    assert list(hello.payload["encodings"]) == list(ENCODINGS)
    assert negotiated_encoding(hello.payload) == "binary"
    assert negotiated_encoding(hello_frame(("json",)).payload) == "json"
    # Pre-binary peers send no "encodings" key at all: JSON.
    assert negotiated_encoding({"version": PROTOCOL_VERSION}) == "json"


def test_binary_payload_rejects_reserved_marker_key():
    with pytest.raises(ProtocolError, match="reserved key"):
        encode_frame(Frame("ok", {"__nd__": 0}), binary=True)


def test_binary_payload_rejects_unsupported_dtype():
    with pytest.raises(ProtocolError, match="no binary wire form"):
        _encode_binary_payload({"x": np.zeros(2, dtype=np.complex128)})


def test_truncated_binary_array_is_rejected():
    body = _encode_binary_payload(
        {"scores": np.arange(16, dtype=np.float64)})
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION,
                        _KIND_CODES["ok"] | _BINARY_FLAG, len(body) - 8)
    with pytest.raises(ProtocolError, match="truncates an array"):
        FrameDecoder().feed(wire + body[:-8])


def test_unknown_binary_dtype_code_is_rejected():
    body = _encode_binary_payload({"scores": np.zeros(4)})
    # The dtype code byte sits right after the u32 json length + JSON.
    (json_length,) = np.frombuffer(body[:4], dtype=">u4")
    corrupt = bytearray(body)
    corrupt[4 + int(json_length)] = 99
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION,
                        _KIND_CODES["ok"] | _BINARY_FLAG, len(corrupt))
    with pytest.raises(ProtocolError, match="dtype code 99"):
        FrameDecoder().feed(wire + bytes(corrupt))


def test_binary_array_reference_out_of_range_is_rejected():
    body = json.dumps({"scores": {"__nd__": 3}}).encode("utf8")
    framed = np.asarray([len(body)], dtype=">u4").tobytes() + body
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION,
                        _KIND_CODES["ok"] | _BINARY_FLAG, len(framed))
    with pytest.raises(ProtocolError, match="references array"):
        FrameDecoder().feed(wire + framed)


# ---------------------------------------------------------------------------
# rejection: truncated / oversized / garbage
# ---------------------------------------------------------------------------

def test_truncated_frame_stays_pending_never_partial():
    wire = encode_frame(Frame("top_n", {"user": 3, "n": 5}))
    decoder = FrameDecoder()
    assert decoder.feed(wire[:-1]) == []
    assert decoder.pending_bytes == len(wire) - 1
    frames = decoder.feed(wire[-1:])
    assert len(frames) == 1 and frames[0].payload == {"user": 3, "n": 5}


def test_garbage_magic_is_rejected():
    with pytest.raises(ProtocolError, match="magic"):
        FrameDecoder().feed(b"GET / HTTP/1.1\r\n\r\n")


def test_oversized_frame_is_rejected_before_buffering():
    header = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, _KIND_CODES["stats"],
                          MAX_PAYLOAD + 1)
    with pytest.raises(ProtocolError, match="limit"):
        FrameDecoder().feed(header)
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(Frame("ok", {"blob": "x" * (MAX_PAYLOAD + 1)}))


def test_unknown_kind_code_is_rejected():
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, 250, 2) + b"{}"
    with pytest.raises(ProtocolError, match="kind code 250"):
        FrameDecoder().feed(wire)


def test_malformed_payload_is_rejected():
    body = b"not json"
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, _KIND_CODES["ok"],
                        len(body)) + body
    with pytest.raises(ProtocolError, match="malformed"):
        FrameDecoder().feed(wire)
    body = b"[1,2]"  # valid JSON, wrong shape
    wire = _HEADER.pack(_MAGIC, PROTOCOL_VERSION, _KIND_CODES["ok"],
                        len(body)) + body
    with pytest.raises(ProtocolError, match="JSON object"):
        FrameDecoder().feed(wire)


def test_encode_unknown_kind_is_rejected():
    with pytest.raises(ProtocolError, match="unknown frame kind"):
        encode_frame(Frame("bogus"))


# ---------------------------------------------------------------------------
# handshake
# ---------------------------------------------------------------------------

def test_handshake_accepts_matching_version():
    assert check_hello(hello_frame()) is None


def test_handshake_refuses_cross_version_clients():
    refusal = check_hello(Frame("hello", {"version": PROTOCOL_VERSION + 1}))
    assert refusal is not None and refusal.is_error
    assert "not supported" in refusal.payload["message"]
    assert refusal.payload["server_version"] == PROTOCOL_VERSION
    missing = check_hello(Frame("hello", {}))
    assert missing is not None and missing.is_error


def test_handshake_refuses_non_hello_openers():
    refusal = check_hello(Frame("top_n", {"user": 0}))
    assert refusal is not None and refusal.is_error
    assert "handshake" in refusal.payload["message"]


# ---------------------------------------------------------------------------
# the shared line protocol (REPL parser/formatter)
# ---------------------------------------------------------------------------

def test_parse_line_covers_the_command_set():
    assert parse_line("   ") is None
    assert parse_line("quit").kind == "quit"
    assert parse_line("predict 3 7").payload == {"user": 3, "item": 7}
    assert parse_line("top 2").payload == {"user": 2, "n": 10}
    assert parse_line("top 2 5").payload == {"user": 2, "n": 5}
    assert parse_line("foldin 0:4.5 9:3.0").payload == {
        "items": [0, 9], "values": [4.5, 3.0]}
    assert parse_line("rate 60 2:4.0").payload == {
        "user": 60, "items": [2], "values": [4.0]}
    assert parse_line("stats").kind == "stats"
    assert parse_line("health").kind == "health"


def test_parse_line_raises_exactly_what_the_legacy_parser_raised():
    with pytest.raises(ValueError, match="invalid literal"):
        parse_line("predict zero 1")
    with pytest.raises(IndexError):
        parse_line("predict 0")
    with pytest.raises(ProtocolError, match="unknown command 'bogus'"):
        parse_line("bogus")


@pytest.fixture(scope="module")
def trained_snapshot(tmp_path_factory):
    path = tmp_path_factory.mktemp("protocol") / "model.npz"
    assert main(["train", "--snapshot", str(path),
                 "--users", "60", "--movies", "40", "--num-latent", "4",
                 "--burn-in", "2", "--n-samples", "3"]) == 0
    return path


def _legacy_transcript(service, commands: str) -> list[str]:
    """The historical ad-hoc serve loop, verbatim — the golden oracle."""
    out = []
    for line in commands.splitlines():
        parts = line.split()
        if not parts:
            continue
        command, rest = parts[0], parts[1:]
        try:
            if command == "quit":
                break
            elif command == "predict":
                user, item = int(rest[0]), int(rest[1])
                out.append(f"{service.predict(user, item):.4f}")
            elif command == "top":
                user = int(rest[0])
                n = int(rest[1]) if len(rest) > 1 else 10
                recommendation = service.top_n(user, n=n)
                out.append(" ".join(f"{item}:{score:.4f}" for item, score
                                    in recommendation.as_pairs()))
            elif command == "foldin":
                items = [int(token.partition(":")[0]) for token in rest]
                values = [float(token.partition(":")[2]) for token in rest]
                user = service.fold_in(np.array(items), np.array(values))
                out.append(f"user {user}")
            elif command == "rate":
                user = int(rest[0])
                items = [int(token.partition(":")[0]) for token in rest[1:]]
                values = [float(token.partition(":")[2])
                          for token in rest[1:]]
                service.add_ratings(user, np.array(items), np.array(values))
                out.append(f"user {user} updated")
            elif command == "stats":
                out.append(json.dumps(service.stats(), sort_keys=True))
            else:
                out.append(f"error: unknown command {command!r}")
        except (ValueError, IndexError, KeyError) as error:
            out.append(f"error: {error}")
        except Exception as error:  # ValidationError
            out.append(f"error: {error}")
    return out


def test_golden_repl_transcript(trained_snapshot, capsys, monkeypatch):
    """The codec-backed REPL is bit-identical to the legacy loop."""
    commands = ("predict 0 1\n"
                "top 0 3\n"
                "top 5\n"
                "foldin 0:4.5 1:3.0\n"
                "predict 60 2\n"
                "rate 60 2:4.0\n"
                "top 60 4\n"
                "predict 999 0\n"
                "predict x 1\n"
                "predict 0\n"
                "bogus\n"
                "stats\n"
                "quit\n"
                "top 0 99\n")  # after quit: never served
    expected = _legacy_transcript(
        PredictionService(trained_snapshot, mode="mean"), commands)
    monkeypatch.setattr("sys.stdin", io.StringIO(commands))
    assert main(["serve", "--snapshot", str(trained_snapshot)]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].startswith("serving 60 users x 40 items")
    assert lines[1:] == expected


# ---------------------------------------------------------------------------
# the shared executor
# ---------------------------------------------------------------------------

def test_execute_unknown_kind_and_bad_payload_become_error_frames(
        trained_snapshot):
    service = PredictionService(trained_snapshot)
    reply = execute(service, Frame("hello"))
    assert reply.is_error and "unknown command" in reply.payload["message"]
    reply = execute(service, Frame("top_n", {}))  # missing "user"
    assert reply.is_error
    reply = execute(service, Frame("predict", {"user": 0, "item": "seven"}))
    assert reply.is_error


def test_execute_top_n_batch_orders_and_dedupes(trained_snapshot):
    service = PredictionService(trained_snapshot)
    reply = execute(service, Frame("top_n_batch",
                                   {"users": [3, 1, 3], "n": 4}))
    assert not reply.is_error
    results = reply.payload["results"]
    assert [entry["user"] for entry in results] == [3, 1]
    solo = execute(service, Frame("top_n", {"user": 3, "n": 4}))
    assert results[0] == solo.payload
