"""Fold-in correctness: the batched path equals the closed-form posterior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priors import GaussianPrior
from repro.core.updates import (
    conditional_distribution,
    sample_item_serial_cholesky,
)
from repro.serving.foldin import fold_in_posterior, fold_in_user, fold_in_users
from repro.utils.validation import ValidationError


@pytest.fixture
def setting(rng):
    item_factors = rng.normal(size=(30, 5))
    prior = GaussianPrior(mean=rng.normal(size=5),
                          precision=np.eye(5) * 2.0)
    return item_factors, prior


class TestFoldInMean:
    def test_matches_closed_form_posterior_mean(self, rng, setting):
        item_factors, prior = setting
        items = np.array([2, 5, 11, 20])
        values = rng.normal(size=4)
        folded = fold_in_user(item_factors, prior, 4.0, items, values)
        mean, _ = conditional_distribution(item_factors[items], values,
                                           prior, 4.0)
        np.testing.assert_allclose(folded, mean, rtol=1e-9, atol=1e-12)

    def test_batch_matches_per_user(self, rng, setting):
        item_factors, prior = setting
        item_lists = [np.array([0, 3]), np.array([7]),
                      np.array([1, 2, 3, 4, 5])]
        value_lists = [rng.normal(size=len(items)) for items in item_lists]
        stacked = fold_in_users(item_factors, prior, 4.0,
                                item_lists, value_lists)
        for row, (items, values) in enumerate(zip(item_lists, value_lists)):
            single = fold_in_user(item_factors, prior, 4.0, items, values)
            np.testing.assert_allclose(stacked[row], single,
                                       rtol=1e-9, atol=1e-12)

    def test_zero_rating_user_gets_prior_mean(self, setting):
        item_factors, prior = setting
        folded = fold_in_user(item_factors, prior, 4.0,
                              np.empty(0, dtype=np.int64), np.empty(0))
        np.testing.assert_allclose(folded, prior.mean, rtol=1e-9, atol=1e-12)

    def test_empty_batch(self, setting):
        item_factors, prior = setting
        assert fold_in_users(item_factors, prior, 4.0, [], []).shape == (0, 5)

    def test_engine_selection(self, rng, setting):
        """Every engine folds in to identical rows; junk engines rejected."""
        item_factors, prior = setting
        item_lists = [np.array([0, 3]), np.array([7, 8, 9])]
        value_lists = [rng.normal(size=len(items)) for items in item_lists]
        default = fold_in_users(item_factors, prior, 4.0,
                                item_lists, value_lists)
        reference = fold_in_users(item_factors, prior, 4.0,
                                  item_lists, value_lists, engine="reference")
        np.testing.assert_allclose(reference, default, rtol=1e-7, atol=1e-9)
        from repro.core.batch_engine import make_update_engine
        with make_update_engine("shared", n_workers=2) as engine:
            shared = fold_in_users(item_factors, prior, 4.0,
                                   item_lists, value_lists, engine=engine)
        np.testing.assert_array_equal(shared, default)
        with pytest.raises(ValidationError):
            fold_in_users(item_factors, prior, 4.0, item_lists, value_lists,
                          engine=42)
        with pytest.raises(ValidationError):
            fold_in_users(item_factors, prior, 4.0, item_lists, value_lists,
                          engine="no-such-engine")

    def test_shared_engine_by_name_does_not_leak_workers(self, rng, setting):
        """An engine built from a name is closed before returning."""
        import multiprocessing

        item_factors, prior = setting
        item_lists = [np.array([0, 3]), np.array([7, 8, 9])]
        value_lists = [rng.normal(size=len(items)) for items in item_lists]
        default = fold_in_users(item_factors, prior, 4.0,
                                item_lists, value_lists)
        shared = fold_in_users(item_factors, prior, 4.0,
                               item_lists, value_lists, engine="shared")
        np.testing.assert_array_equal(shared, default)
        leftover = [proc for proc in multiprocessing.active_children()
                    if proc.name.startswith("repro-shared-worker")]
        assert leftover == []


class TestFoldInSample:
    def test_noise_draws_the_conditional_sample(self, rng, setting):
        """With real noise the fold-in is the same draw as sample_item."""
        item_factors, prior = setting
        items = np.array([1, 8, 9])
        values = rng.normal(size=3)
        noise = rng.standard_normal(5)
        folded = fold_in_user(item_factors, prior, 4.0, items, values,
                              noise=noise)
        reference = sample_item_serial_cholesky(item_factors[items], values,
                                                prior, 4.0, noise=noise)
        np.testing.assert_allclose(folded, reference, rtol=1e-7, atol=1e-9)


class TestFoldInPosterior:
    def test_mean_and_cholesky(self, rng, setting):
        item_factors, prior = setting
        items = np.array([4, 6])
        values = rng.normal(size=2)
        mean, chol = fold_in_posterior(item_factors, prior, 4.0, items, values)
        expected_precision = prior.precision + 4.0 * (
            item_factors[items].T @ item_factors[items])
        np.testing.assert_allclose(chol @ chol.T, expected_precision,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            expected_precision @ mean,
            prior.precision @ prior.mean + 4.0 * item_factors[items].T @ values,
            rtol=1e-9, atol=1e-12)

    def test_bad_item_index_rejected(self, setting):
        item_factors, prior = setting
        with pytest.raises(ValidationError):
            fold_in_posterior(item_factors, prior, 4.0,
                              np.array([99]), np.array([1.0]))


class TestValidation:
    def test_item_out_of_range(self, setting):
        item_factors, prior = setting
        with pytest.raises(ValidationError, match="fold-in user 0"):
            fold_in_users(item_factors, prior, 4.0,
                          [np.array([30])], [np.array([1.0])])
        with pytest.raises(ValidationError, match="fold-in user 0"):
            fold_in_users(item_factors, prior, 4.0,
                          [np.array([-1])], [np.array([1.0])])

    def test_ragged_mismatch(self, setting):
        item_factors, prior = setting
        with pytest.raises(ValidationError, match="items but"):
            fold_in_users(item_factors, prior, 4.0,
                          [np.array([1, 2])], [np.array([1.0])])
        with pytest.raises(ValidationError, match="align"):
            fold_in_users(item_factors, prior, 4.0, [np.array([1])], [])

    def test_bad_noise_shape(self, setting):
        item_factors, prior = setting
        with pytest.raises(ValidationError, match="noise"):
            fold_in_users(item_factors, prior, 4.0,
                          [np.array([1])], [np.array([1.0])],
                          noise=np.zeros((2, 5)))

    def test_k_mismatch(self, rng):
        prior = GaussianPrior.standard(4)
        with pytest.raises(ValidationError, match="K="):
            fold_in_users(rng.normal(size=(10, 5)), prior, 4.0, [], [])

    def test_bad_alpha(self, setting):
        item_factors, prior = setting
        with pytest.raises(ValidationError):
            fold_in_users(item_factors, prior, 0.0, [], [])
