"""The append-only segment WAL: durability, recovery, torn tails.

The contract pinned here (see ``repro.serving.wal.log``):

* appends get monotonic seqnos and survive a close/reopen bit-exactly;
* a torn tail — any truncation or byte damage in the *final* record —
  is repaired by truncating back to the last whole record (such a
  record was never acked, so nothing acknowledged is lost);
* damage anywhere *interior* (valid data follows it, or a non-final
  segment, or a missing segment) raises :class:`WalCorruptionError`
  instead of silently dropping acked writes;
* rotation and compaction never change what replays.
"""

from __future__ import annotations

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.wal import WalCorruptionError, WalError, WriteAheadLog
from repro.serving.wal.log import _RECORD_HEADER, MAX_RECORD_PAYLOAD


def _fill(log: WriteAheadLog, n: int, start: int = 0) -> list:
    payloads = [{"kind": "rate", "user": start + i, "value": 0.1 * i}
                for i in range(n)]
    for i, payload in enumerate(payloads):
        assert log.append(payload) == log.high_seqno
    return payloads


def _segments(directory) -> list:
    return sorted(path for path in directory.iterdir()
                  if path.name.endswith(".seg"))


def test_append_assigns_monotonic_seqnos_and_reads_back(tmp_path):
    with WriteAheadLog(tmp_path) as log:
        payloads = _fill(log, 5)
        assert log.high_seqno == 5
        assert len(log) == 5
        records = list(log.records())
        assert [record.seqno for record in records] == [1, 2, 3, 4, 5]
        assert [record.payload for record in records] == payloads
        assert [record.seqno for record in log.records(start_seqno=4)] \
            == [4, 5]
        assert [record.seqno for record in log.read_range(2, 2)] == [2, 3]


def test_reopen_recovers_everything_bit_exactly(tmp_path):
    # Values chosen to stress IEEE round-tripping: replay must apply the
    # very same doubles the leader applied live.
    payloads = [{"value": 0.1 + 0.2}, {"value": 1e-308}, {"value": -0.0},
                {"value": 12345678901234567.0}]
    with WriteAheadLog(tmp_path) as log:
        for payload in payloads:
            log.append(payload)
    with WriteAheadLog(tmp_path) as reopened:
        assert reopened.n_recovered == len(payloads)
        assert reopened.high_seqno == len(payloads)
        recovered = [record.payload["value"]
                     for record in reopened.records()]
        expected = [payload["value"] for payload in payloads]
        assert struct.pack(f">{len(recovered)}d", *recovered) \
            == struct.pack(f">{len(expected)}d", *expected)
        # And appending continues from the recovered high-water mark.
        assert reopened.append({"more": True}) == len(payloads) + 1


def test_torn_tail_is_truncated_not_fatal(tmp_path):
    with WriteAheadLog(tmp_path) as log:
        _fill(log, 3)
    segment = _segments(tmp_path)[-1]
    raw = segment.read_bytes()
    segment.write_bytes(raw[:-7])  # tear the last record mid-payload
    with WriteAheadLog(tmp_path) as log:
        assert log.n_recovered == 2
        assert log.truncated_bytes > 0
        assert log.high_seqno == 2
        # The torn bytes are gone from disk too: the next append starts
        # at a clean record boundary and seqno 3 is reissued.
        assert log.append({"again": 3}) == 3
    with WriteAheadLog(tmp_path) as log:
        assert [record.seqno for record in log.records()] == [1, 2, 3]


def test_crc_flip_in_the_final_record_is_a_torn_tail(tmp_path):
    with WriteAheadLog(tmp_path) as log:
        _fill(log, 3)
    segment = _segments(tmp_path)[-1]
    raw = bytearray(segment.read_bytes())
    raw[-1] ^= 0xFF  # corrupt the last record's payload
    segment.write_bytes(bytes(raw))
    with WriteAheadLog(tmp_path) as log:
        assert log.n_recovered == 2


def test_crc_flip_in_the_interior_refuses_to_recover(tmp_path):
    with WriteAheadLog(tmp_path) as log:
        _fill(log, 3)
    segment = _segments(tmp_path)[-1]
    raw = bytearray(segment.read_bytes())
    raw[_RECORD_HEADER.size + 2] ^= 0xFF  # inside record 1's payload
    segment.write_bytes(bytes(raw))
    with pytest.raises(WalCorruptionError):
        WriteAheadLog(tmp_path)


def test_damage_in_a_non_final_segment_refuses_to_recover(tmp_path):
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        _fill(log, 3)  # one record per segment
    first = _segments(tmp_path)[0]
    first.write_bytes(first.read_bytes()[:-2])
    with pytest.raises(WalCorruptionError, match="non-final"):
        WriteAheadLog(tmp_path)


def test_a_missing_segment_refuses_to_recover(tmp_path):
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        _fill(log, 3)
    _segments(tmp_path)[1].unlink()
    with pytest.raises(WalCorruptionError, match="missing"):
        WriteAheadLog(tmp_path)


def test_rotation_spreads_segments_and_replays_identically(tmp_path):
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        payloads = _fill(log, 5)
        assert len(_segments(tmp_path)) == 5
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        assert [record.payload for record in log.records()] == payloads


def test_compaction_drops_covered_segments_and_reopens(tmp_path):
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        _fill(log, 5)
        assert log.compact(retain_from_seqno=4) == 3
        assert len(_segments(tmp_path)) == 2
        assert [record.seqno for record in log.read_range(4, 10)] == [4, 5]
    with WriteAheadLog(tmp_path, segment_bytes=1) as log:
        # Recovery starts at the first surviving segment's base seqno.
        assert [record.seqno for record in log.records()] == [4, 5]
        assert log.append({"post": True}) == 6
        # The active segment is never dropped.
        assert log.compact(retain_from_seqno=10**6) == 2


def test_sync_every_batches_fsyncs(tmp_path):
    with WriteAheadLog(tmp_path, sync_every=3) as log:
        _fill(log, 2)
        assert log.n_syncs == 0  # two unsynced appends
        log.append({"third": True})
        assert log.n_syncs == 1  # the batch threshold
        log.append({"fourth": True})
        log.sync()
        assert log.n_syncs == 2  # explicit flush of the partial batch
        log.sync()
        assert log.n_syncs == 2  # nothing pending: no-op
    strict = WriteAheadLog(tmp_path)
    assert strict.n_recovered == 4
    strict.close()


def test_in_memory_mode_has_the_same_api(tmp_path):
    log = WriteAheadLog(directory=None)
    payloads = _fill(log, 4)
    assert [record.payload for record in log.records()] == payloads
    assert log.compact(retain_from_seqno=3) == 1
    assert [record.seqno for record in log.records()] == [3, 4]
    assert log.stats()["durable"] is False
    log.close()


def test_oversized_payloads_are_refused_at_append(tmp_path):
    with WriteAheadLog(tmp_path) as log:
        with pytest.raises(WalError, match="record limit"):
            log.append({"blob": "x" * (MAX_RECORD_PAYLOAD + 1)})
        assert log.high_seqno == 0


def test_invalid_configuration_is_refused(tmp_path):
    with pytest.raises(WalError, match="sync_every"):
        WriteAheadLog(tmp_path, sync_every=0)
    with pytest.raises(WalError, match="segment_bytes"):
        WriteAheadLog(tmp_path, segment_bytes=0)
    with WriteAheadLog(tmp_path) as log:
        with pytest.raises(WalError, match="limit"):
            log.read_range(1, 0)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_any_crash_point_recovers_an_exact_acked_prefix(tmp_path_factory,
                                                        data):
    """The crash-recovery property: cut the final segment *anywhere* and
    recovery yields an exact prefix of what was appended — every record
    acked before the cut point survives, bit for bit, and nothing
    invented appears."""
    directory = tmp_path_factory.mktemp("wal")
    n_records = data.draw(st.integers(min_value=1, max_value=8),
                          label="n_records")
    payloads = [
        {"user": i,
         "value": data.draw(st.floats(allow_nan=False), label=f"v{i}"),
         "note": data.draw(st.text(max_size=8), label=f"t{i}")}
        for i in range(n_records)]
    with WriteAheadLog(directory) as log:
        for payload in payloads:
            log.append(payload)
    segment = _segments(directory)[-1]
    raw = segment.read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw)),
                    label="cut")
    segment.write_bytes(raw[:cut])

    with WriteAheadLog(directory) as log:
        recovered = list(log.records())
    # json round-trip of the originals: what append() itself stored.
    canonical = [json.loads(json.dumps(payload)) for payload in payloads]
    assert [record.payload for record in recovered] \
        == canonical[:len(recovered)]
    assert [record.seqno for record in recovered] \
        == list(range(1, len(recovered) + 1))
    if cut == len(raw):  # no tear at all: nothing may be dropped
        assert len(recovered) == n_records
