"""Unit tests for the three item-update kernels and the hybrid policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priors import GaussianPrior
from repro.core.updates import (
    HybridUpdatePolicy,
    UpdateMethod,
    cholesky_rank_one_update,
    conditional_distribution,
    sample_item,
    sample_item_parallel_cholesky,
    sample_item_rank_one,
    sample_item_serial_cholesky,
)
from repro.utils.validation import ValidationError


@pytest.fixture
def item_problem(rng):
    """One synthetic item update problem: 20 neighbours, K=5."""
    k = 5
    neighbours = rng.normal(size=(20, k))
    ratings = rng.normal(size=20)
    prior = GaussianPrior(mean=rng.normal(size=k), precision=np.eye(k) * 1.5)
    return neighbours, ratings, prior


class TestCholeskyRankOneUpdate:
    def test_matches_direct_factorisation(self, rng):
        a = rng.normal(size=(4, 4))
        spd = a @ a.T + 4 * np.eye(4)
        vector = rng.normal(size=4)
        updated = cholesky_rank_one_update(np.linalg.cholesky(spd), vector)
        expected = np.linalg.cholesky(spd + np.outer(vector, vector))
        np.testing.assert_allclose(updated, expected, atol=1e-10)

    def test_repeated_updates(self, rng):
        spd = np.eye(3)
        chol = np.linalg.cholesky(spd)
        vectors = rng.normal(size=(6, 3))
        for vector in vectors:
            chol = cholesky_rank_one_update(chol, vector)
            spd = spd + np.outer(vector, vector)
        np.testing.assert_allclose(chol, np.linalg.cholesky(spd), atol=1e-9)

    def test_inputs_not_mutated(self, rng):
        chol = np.linalg.cholesky(np.eye(3) * 2)
        vector = rng.normal(size=3)
        chol_copy, vector_copy = chol.copy(), vector.copy()
        cholesky_rank_one_update(chol, vector)
        np.testing.assert_array_equal(chol, chol_copy)
        np.testing.assert_array_equal(vector, vector_copy)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            cholesky_rank_one_update(np.eye(3), np.ones(4))


class TestConditionalDistribution:
    def test_closed_form_small_case(self):
        """Check against a hand-computed 1-D case."""
        prior = GaussianPrior(mean=np.array([0.0]), precision=np.array([[2.0]]))
        neighbours = np.array([[1.0], [2.0]])
        ratings = np.array([3.0, 2.0])
        alpha = 1.0
        mean, chol = conditional_distribution(neighbours, ratings, prior, alpha)
        # precision = 2 + 1*(1+4) = 7 ; rhs = 0 + (3 + 4) = 7 ; mean = 1
        assert mean[0] == pytest.approx(1.0)
        assert chol[0, 0] == pytest.approx(np.sqrt(7.0))

    def test_no_neighbours_returns_prior(self):
        prior = GaussianPrior(mean=np.array([1.0, -1.0]),
                              precision=np.diag([2.0, 4.0]))
        mean, chol = conditional_distribution(np.empty((0, 2)), np.empty(0),
                                              prior, alpha=2.0)
        np.testing.assert_allclose(mean, prior.mean)
        np.testing.assert_allclose(chol @ chol.T, prior.precision)

    def test_more_data_tightens_posterior(self, rng):
        prior = GaussianPrior.standard(3)
        few = rng.normal(size=(2, 3))
        many = rng.normal(size=(200, 3))
        _, chol_few = conditional_distribution(few, rng.normal(size=2), prior, 2.0)
        _, chol_many = conditional_distribution(many, rng.normal(size=200), prior, 2.0)
        assert np.trace(chol_many @ chol_many.T) > np.trace(chol_few @ chol_few.T)

    def test_input_validation(self, rng):
        prior = GaussianPrior.standard(2)
        with pytest.raises(ValidationError):
            conditional_distribution(rng.normal(size=(3, 2)), rng.normal(size=2),
                                     prior, 2.0)
        with pytest.raises(ValidationError):
            conditional_distribution(rng.normal(size=(3, 2)), rng.normal(size=3),
                                     prior, alpha=-1.0)
        with pytest.raises(ValidationError):
            conditional_distribution(rng.normal(size=6), rng.normal(size=6),
                                     prior, 2.0)


class TestKernelEquivalence:
    """All three kernels must sample from the same distribution."""

    def test_identical_given_same_noise(self, item_problem):
        neighbours, ratings, prior = item_problem
        noise = np.random.default_rng(7).standard_normal(prior.num_latent)
        serial = sample_item_serial_cholesky(neighbours, ratings, prior, 2.0,
                                             noise=noise)
        rank_one = sample_item_rank_one(neighbours, ratings, prior, 2.0, noise=noise)
        parallel = sample_item_parallel_cholesky(neighbours, ratings, prior, 2.0,
                                                 noise=noise, n_blocks=4)
        np.testing.assert_allclose(rank_one, serial, atol=1e-8)
        np.testing.assert_allclose(parallel, serial, atol=1e-8)

    def test_parallel_block_count_does_not_change_result(self, item_problem):
        neighbours, ratings, prior = item_problem
        noise = np.zeros(prior.num_latent)
        results = [sample_item_parallel_cholesky(neighbours, ratings, prior, 2.0,
                                                 noise=noise, n_blocks=blocks)
                   for blocks in (1, 2, 3, 8, 50)]
        for result in results[1:]:
            np.testing.assert_allclose(result, results[0], atol=1e-9)

    def test_zero_noise_returns_conditional_mean(self, item_problem):
        neighbours, ratings, prior = item_problem
        mean, _ = conditional_distribution(neighbours, ratings, prior, 2.0)
        sampled = sample_item_serial_cholesky(neighbours, ratings, prior, 2.0,
                                              noise=np.zeros(prior.num_latent))
        np.testing.assert_allclose(sampled, mean, atol=1e-10)

    def test_sample_covariance_matches_conditional(self, rng):
        """Monte-Carlo check that samples follow N(mean, precision^-1)."""
        k = 3
        prior = GaussianPrior.standard(k)
        neighbours = rng.normal(size=(30, k))
        ratings = rng.normal(size=30)
        mean, chol = conditional_distribution(neighbours, ratings, prior, 2.0)
        covariance = np.linalg.inv(chol @ chol.T)
        samples = np.array([
            sample_item_serial_cholesky(neighbours, ratings, prior, 2.0, rng=rng)
            for _ in range(4000)
        ])
        np.testing.assert_allclose(samples.mean(axis=0), mean, atol=0.05)
        np.testing.assert_allclose(np.cov(samples.T), covariance, atol=0.05)

    def test_empty_neighbours_sample_from_prior(self):
        prior = GaussianPrior(mean=np.array([2.0, -1.0]), precision=np.eye(2) * 4.0)
        sampled = sample_item_serial_cholesky(np.empty((0, 2)), np.empty(0), prior,
                                              2.0, noise=np.zeros(2))
        np.testing.assert_allclose(sampled, prior.mean)


class TestHybridPolicy:
    def test_paper_threshold_default(self):
        policy = HybridUpdatePolicy()
        assert policy.parallel_threshold == 1000

    def test_method_selection(self):
        policy = HybridUpdatePolicy(parallel_threshold=1000, rank_one_threshold=32)
        assert policy.choose(1) is UpdateMethod.RANK_ONE
        assert policy.choose(31) is UpdateMethod.RANK_ONE
        assert policy.choose(32) is UpdateMethod.SERIAL_CHOLESKY
        assert policy.choose(999) is UpdateMethod.SERIAL_CHOLESKY
        assert policy.choose(1000) is UpdateMethod.PARALLEL_CHOLESKY
        assert policy.choose(100_000) is UpdateMethod.PARALLEL_CHOLESKY

    def test_subtask_count(self):
        policy = HybridUpdatePolicy(parallel_threshold=1000, block_grain=500)
        assert policy.n_subtasks(100) == 1
        assert policy.n_subtasks(1000) == 2
        assert policy.n_subtasks(5000) == 10

    def test_invalid_thresholds(self):
        with pytest.raises(ValidationError):
            HybridUpdatePolicy(rank_one_threshold=2000, parallel_threshold=1000)
        with pytest.raises(Exception):
            HybridUpdatePolicy(parallel_threshold=0)


class TestSampleItemDispatch:
    def test_forced_method_used(self, item_problem):
        neighbours, ratings, prior = item_problem
        noise = np.zeros(prior.num_latent)
        forced = sample_item(neighbours, ratings, prior, 2.0, noise=noise,
                             method=UpdateMethod.RANK_ONE)
        reference = sample_item_rank_one(neighbours, ratings, prior, 2.0, noise=noise)
        np.testing.assert_allclose(forced, reference)

    def test_policy_dispatch_matches_all_methods(self, item_problem):
        neighbours, ratings, prior = item_problem
        noise = np.zeros(prior.num_latent)
        auto = sample_item(neighbours, ratings, prior, 2.0, noise=noise,
                           policy=HybridUpdatePolicy(rank_one_threshold=5,
                                                     parallel_threshold=10))
        # 20 neighbours with threshold 10 -> parallel Cholesky
        reference = sample_item_parallel_cholesky(neighbours, ratings, prior, 2.0,
                                                  noise=noise, n_blocks=2)
        np.testing.assert_allclose(auto, reference, atol=1e-9)

    def test_default_policy_used_when_unspecified(self, item_problem):
        neighbours, ratings, prior = item_problem
        result = sample_item(neighbours, ratings, prior, 2.0,
                             noise=np.zeros(prior.num_latent))
        assert result.shape == (prior.num_latent,)

    def test_unknown_method_rejected(self, item_problem):
        neighbours, ratings, prior = item_problem
        with pytest.raises(ValidationError):
            sample_item(neighbours, ratings, prior, 2.0, method="bogus")
