"""Unit tests for the simulated MPI substrate (world, buffers, network, trace)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpi.buffers import BufferStats, SendBuffer
from repro.mpi.network import ClusterSpec, NetworkModel
from repro.mpi.simmpi import ANY_SOURCE, ANY_TAG, ReduceOp, SimCommWorld
from repro.mpi.trace import PhaseBreakdown, RankTimeline, combine_breakdowns
from repro.utils.validation import ValidationError


# ---------------------------------------------------------------------------
# SimCommWorld
# ---------------------------------------------------------------------------

class TestPointToPoint:
    def test_send_recv_roundtrip(self):
        world = SimCommWorld(2)
        sender, receiver = world.comms()
        payload = np.arange(5.0)
        sender.isend(payload, dest=1, tag=7)
        received = receiver.recv(source=0, tag=7)
        np.testing.assert_array_equal(received, payload)

    def test_recv_matches_tag_and_source(self):
        world = SimCommWorld(3)
        comms = world.comms()
        comms[0].isend("from0-tagA", dest=2, tag=1)
        comms[1].isend("from1-tagB", dest=2, tag=2)
        assert comms[2].recv(source=1, tag=2) == "from1-tagB"
        assert comms[2].recv(source=ANY_SOURCE, tag=ANY_TAG) == "from0-tagA"

    def test_recv_without_message_raises(self):
        world = SimCommWorld(2)
        with pytest.raises(ValidationError):
            world.comm(1).recv(source=0)

    def test_irecv_polls_until_available(self):
        world = SimCommWorld(2)
        request = world.comm(1).irecv(source=0, tag=5)
        assert not request.test()
        world.comm(0).isend(42, dest=1, tag=5)
        assert request.test()
        assert request.wait() == 42

    def test_wait_on_unposted_message_raises(self):
        world = SimCommWorld(2)
        request = world.comm(1).irecv(source=0)
        with pytest.raises(ValidationError):
            request.wait()

    def test_iprobe_and_drain(self):
        world = SimCommWorld(2)
        for value in range(3):
            world.comm(0).isend(value, dest=1, tag=9)
        assert world.comm(1).iprobe(tag=9)
        assert world.comm(1).drain(tag=9) == [0, 1, 2]
        assert not world.comm(1).iprobe(tag=9)

    def test_invalid_destination(self):
        world = SimCommWorld(2)
        with pytest.raises(ValidationError):
            world.comm(0).isend(1, dest=5)
        with pytest.raises(ValidationError):
            world.comm(9)

    def test_message_ordering_preserved_per_pair(self):
        world = SimCommWorld(2)
        for value in range(5):
            world.comm(0).isend(value, dest=1, tag=1)
        received = [world.comm(1).recv(source=0, tag=1) for _ in range(5)]
        assert received == list(range(5))


class TestAudit:
    def test_message_log_and_traffic_matrix(self):
        world = SimCommWorld(3)
        world.comm(0).isend(np.zeros(10), dest=1)
        world.comm(0).isend(np.zeros(20), dest=2)
        world.comm(2).isend(np.zeros(5), dest=1)
        matrix = world.traffic_matrix()
        assert matrix[0, 1] == 80
        assert matrix[0, 2] == 160
        assert matrix[2, 1] == 40
        assert len(world.message_log) == 3

    def test_pending_messages_counter(self):
        world = SimCommWorld(2)
        world.comm(0).isend("x", dest=1)
        assert world.pending_messages() == 1
        world.comm(1).recv()
        assert world.pending_messages() == 0

    def test_payload_size_estimates(self):
        world = SimCommWorld(2)
        world.comm(0).isend((np.zeros(4), np.zeros((2, 3))), dest=1)
        world.comm(0).isend({"a": np.zeros(2)}, dest=1)
        world.comm(0).isend(3.14, dest=1)
        sizes = [record.n_bytes for record in world.message_log]
        assert sizes[0] == 32 + 48
        assert sizes[1] == 16
        assert sizes[2] == 8

    def test_reset_log(self):
        world = SimCommWorld(2)
        world.comm(0).isend(1, dest=1)
        world.reset_log()
        assert world.message_log == []


class TestCollectives:
    def test_allreduce_sum(self):
        world = SimCommWorld(3)
        comms = world.comms()
        key = "stats"
        results = [comms[rank].allreduce(np.full(4, float(rank + 1)), key=key)
                   for rank in range(3)]
        # Only the last contributor gets the value directly.
        assert results[0] is None and results[1] is None
        np.testing.assert_allclose(results[2], np.full(4, 6.0))
        np.testing.assert_allclose(comms[0].fetch_allreduce(key), np.full(4, 6.0))
        np.testing.assert_allclose(comms[1].fetch_allreduce(key), np.full(4, 6.0))

    def test_allreduce_max_and_min(self):
        arrays = [np.array([1.0, 5.0]), np.array([3.0, 2.0])]
        assert ReduceOp.apply(ReduceOp.MAX, arrays).tolist() == [3.0, 5.0]
        assert ReduceOp.apply(ReduceOp.MIN, arrays).tolist() == [1.0, 2.0]
        with pytest.raises(ValidationError):
            ReduceOp.apply("product", arrays)

    def test_allreduce_single_rank(self):
        world = SimCommWorld(1)
        result = world.comm(0).allreduce(np.array([2.0, 3.0]), key="solo")
        np.testing.assert_allclose(result, [2.0, 3.0])

    def test_double_contribution_rejected(self):
        world = SimCommWorld(2)
        world.comm(0).allreduce(np.zeros(2), key="k")
        with pytest.raises(ValidationError):
            world.comm(0).allreduce(np.zeros(2), key="k")

    def test_fetch_before_completion_raises(self):
        world = SimCommWorld(2)
        world.comm(0).allreduce(np.zeros(2), key="incomplete")
        with pytest.raises(ValidationError):
            world.comm(0).fetch_allreduce(key="incomplete")

    def test_bcast(self):
        world = SimCommWorld(3)
        comms = world.comms()
        assert comms[0].bcast("hello", root=0) == "hello"
        assert comms[1].bcast(None, root=0) == "hello"
        assert comms[2].bcast(None, root=0) == "hello"

    def test_barrier_is_noop(self):
        SimCommWorld(2).comm(0).barrier()


# ---------------------------------------------------------------------------
# send buffers
# ---------------------------------------------------------------------------

class TestSendBuffer:
    def test_flushes_when_full(self):
        flushed = []
        buffer = SendBuffer(destination=3, capacity=2, num_latent=4,
                            on_flush=lambda dest, ids, payload: flushed.append(
                                (dest, ids.copy(), payload.copy())))
        assert not buffer.add(1, np.ones(4))
        assert buffer.add(2, np.full(4, 2.0))
        assert len(flushed) == 1
        dest, ids, payload = flushed[0]
        assert dest == 3
        assert ids.tolist() == [1, 2]
        assert payload.shape == (2, 4)

    def test_partial_flush(self):
        buffer = SendBuffer(destination=0, capacity=10, num_latent=2)
        buffer.add(5, np.zeros(2))
        ids, payload = buffer.flush()
        assert ids.tolist() == [5]
        assert buffer.empty
        assert buffer.stats.n_flushes_partial == 1

    def test_flush_empty_is_noop(self):
        buffer = SendBuffer(destination=0, capacity=4, num_latent=2)
        assert buffer.flush() is None
        assert buffer.stats.n_messages == 0

    def test_stats_counters(self):
        buffer = SendBuffer(destination=0, capacity=2, num_latent=2)
        for item in range(5):
            buffer.add(item, np.zeros(2))
        buffer.flush()
        assert buffer.stats.n_items == 5
        assert buffer.stats.n_messages == 3
        assert buffer.stats.n_flushes_full == 2
        assert buffer.stats.n_flushes_partial == 1
        assert buffer.stats.items_per_message == pytest.approx(5 / 3)

    def test_wrong_factor_shape(self):
        buffer = SendBuffer(destination=0, capacity=2, num_latent=3)
        with pytest.raises(ValueError):
            buffer.add(0, np.zeros(4))

    def test_stats_merge(self):
        a = BufferStats(n_items=3, n_messages=1)
        b = BufferStats(n_items=2, n_messages=2, n_flushes_partial=1)
        merged = a.merge(b)
        assert merged.n_items == 5 and merged.n_messages == 3

    def test_capacity_one_is_per_item_messaging(self):
        buffer = SendBuffer(destination=0, capacity=1, num_latent=2)
        for item in range(4):
            buffer.add(item, np.zeros(2))
        assert buffer.stats.n_messages == 4


# ---------------------------------------------------------------------------
# network / cluster model
# ---------------------------------------------------------------------------

class TestClusterSpec:
    def test_rack_assignment(self):
        cluster = ClusterSpec(rack_size=4)
        assert cluster.rack_of(0) == 0
        assert cluster.rack_of(3) == 0
        assert cluster.rack_of(4) == 1
        assert cluster.same_rack(1, 3)
        assert not cluster.same_rack(3, 4)
        assert cluster.n_racks(9) == 3

    def test_cache_factor_limits(self):
        cluster = ClusterSpec(cache_bytes=1000, cache_speedup=1.5)
        assert cluster.cache_factor(100) == pytest.approx(1.5)
        assert cluster.cache_factor(1000) == pytest.approx(1.5)
        assert cluster.cache_factor(8001) == pytest.approx(1.0)
        middle = cluster.cache_factor(3000)
        assert 1.0 < middle < 1.5

    def test_cache_factor_monotone(self):
        cluster = ClusterSpec(cache_bytes=1000, cache_speedup=1.4)
        sizes = [10, 500, 1500, 3000, 6000, 10_000]
        factors = [cluster.cache_factor(size) for size in sizes]
        assert factors == sorted(factors, reverse=True)

    def test_cache_disabled(self):
        cluster = ClusterSpec(cache_speedup=1.0)
        assert cluster.cache_factor(1) == 1.0

    def test_validation(self):
        with pytest.raises(Exception):
            ClusterSpec(cores_per_node=0)
        with pytest.raises(Exception):
            ClusterSpec(cache_speedup=0.5)
        with pytest.raises(Exception):
            ClusterSpec(node_compute_efficiency=0.0)


class TestNetworkModel:
    def test_intra_rack_cheaper_than_inter_rack(self):
        cluster = ClusterSpec(rack_size=4)
        network = NetworkModel()
        intra = network.transfer_time(cluster, 0, 1, 1_000_000)
        inter = network.transfer_time(cluster, 0, 5, 1_000_000)
        assert intra < inter

    def test_transfer_time_components(self):
        cluster = ClusterSpec(rack_size=32)
        network = NetworkModel(intra_latency=1e-6, intra_bandwidth=1e9)
        assert network.transfer_time(cluster, 0, 1, 1e6) == pytest.approx(
            1e-6 + 1e6 / 1e9)

    def test_message_bytes(self):
        network = NetworkModel(item_header_bytes=8)
        assert network.message_bytes(10, 16) == 10 * (16 * 8 + 8)

    def test_allreduce_time_grows_logarithmically(self):
        cluster = ClusterSpec(rack_size=32)
        network = NetworkModel()
        t1 = network.allreduce_time(cluster, 1, 1024)
        t8 = network.allreduce_time(cluster, 8, 1024)
        t64 = network.allreduce_time(cluster, 64, 1024)
        assert t1 == 0.0
        # 64 nodes need twice the rounds of 8 nodes and cross racks, so the
        # cost grows — but far more slowly than the 8x node-count increase.
        assert t8 < t64 < 8 * t8

    def test_uplink_serialization(self):
        network = NetworkModel(uplink_bandwidth=1e9)
        assert network.uplink_serialization(2e9) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(Exception):
            NetworkModel(intra_bandwidth=0.0)
        with pytest.raises(Exception):
            NetworkModel(per_message_overhead=-1.0)


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

class TestTrace:
    def test_rank_timeline_fractions(self):
        timeline = RankTimeline(rank=0)
        timeline.add_compute(6.0)
        timeline.add_both(2.0)
        timeline.add_communicate(2.0)
        fractions = timeline.fractions()
        assert fractions["compute"] == pytest.approx(0.6)
        assert fractions["both"] == pytest.approx(0.2)
        assert fractions["communicate"] == pytest.approx(0.2)

    def test_empty_timeline_defaults_to_compute(self):
        assert RankTimeline(rank=0).fractions()["compute"] == 1.0

    def test_overlapped_phase_accounting(self):
        timeline = RankTimeline(rank=0)
        timeline.add_overlapped_phase(compute_seconds=10.0, comm_busy_seconds=4.0,
                                      wait_seconds=1.0)
        assert timeline.both == pytest.approx(4.0)
        assert timeline.compute == pytest.approx(6.0)
        assert timeline.communicate == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(Exception):
            RankTimeline(rank=0).add_compute(-1.0)

    def test_breakdown_from_timelines_and_combine(self):
        timelines = [RankTimeline(0, compute=3.0, communicate=1.0, both=1.0),
                     RankTimeline(1, compute=1.0, communicate=3.0, both=1.0)]
        breakdown = PhaseBreakdown.from_timelines(timelines)
        assert breakdown.total == pytest.approx(10.0)
        combined = combine_breakdowns([breakdown, breakdown])
        assert combined.compute == pytest.approx(8.0)
        fractions = combined.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_breakdown_requires_positive_total(self):
        with pytest.raises(ValidationError):
            PhaseBreakdown(compute=0.0, both=0.0, communicate=0.0)
        with pytest.raises(ValidationError):
            PhaseBreakdown.from_timelines([])
        with pytest.raises(ValidationError):
            combine_breakdowns([])
