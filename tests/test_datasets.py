"""Unit tests for the dataset generators and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.chembl import CHEMBL_PAPER_SHAPE, ChemblLikeConfig, make_chembl_like
from repro.datasets.degree_models import (
    lognormal_degrees,
    power_law_degrees,
    scale_degrees_to_nnz,
)
from repro.datasets.movielens import (
    MOVIELENS_PAPER_SHAPE,
    MovieLensLikeConfig,
    make_movielens_like,
)
from repro.datasets.registry import (
    DatasetSpec,
    available_datasets,
    load_dataset,
    register_dataset,
)
from repro.datasets.scaling_workload import ScalingWorkloadConfig, make_scaling_workload
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.utils.validation import ValidationError


class TestDegreeModels:
    def test_power_law_bounds(self):
        degrees = power_law_degrees(500, exponent=2.0, min_degree=2,
                                    max_degree=50, seed=0)
        assert degrees.min() >= 2
        assert degrees.max() <= 50
        assert degrees.shape == (500,)

    def test_power_law_is_heavy_tailed(self):
        degrees = power_law_degrees(5000, exponent=1.5, min_degree=1,
                                    max_degree=10_000, seed=1)
        # Mean far above median is the signature of a heavy tail.
        assert degrees.mean() > 2.0 * np.median(degrees)

    def test_power_law_deterministic(self):
        a = power_law_degrees(100, seed=3)
        b = power_law_degrees(100, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_power_law_exponent_one_uses_log_uniform(self):
        degrees = power_law_degrees(200, exponent=1.0, min_degree=1,
                                    max_degree=100, seed=0)
        assert degrees.min() >= 1 and degrees.max() <= 100

    def test_power_law_invalid_args(self):
        with pytest.raises(ValidationError):
            power_law_degrees(0)
        with pytest.raises(ValueError):
            power_law_degrees(10, min_degree=10, max_degree=5)

    def test_lognormal_bounds(self):
        degrees = lognormal_degrees(300, mean_log=2.0, sigma_log=0.8,
                                    min_degree=1, max_degree=40, seed=0)
        assert degrees.min() >= 1 and degrees.max() <= 40

    def test_scale_degrees_exact_total(self):
        degrees = power_law_degrees(200, seed=2)
        scaled = scale_degrees_to_nnz(degrees, 5000, min_degree=1)
        assert scaled.sum() == 5000

    def test_scale_degrees_preserves_order(self):
        degrees = np.array([100, 10, 1, 50])
        scaled = scale_degrees_to_nnz(degrees, 1000, min_degree=1)
        assert scaled[0] >= scaled[3] >= scaled[1] >= scaled[2]

    def test_scale_degrees_respects_max(self):
        degrees = np.array([1000, 1, 1])
        scaled = scale_degrees_to_nnz(degrees, 60, min_degree=1, max_degree=50)
        assert scaled.max() <= 50

    def test_scale_degrees_empty(self):
        assert scale_degrees_to_nnz(np.array([]), 10).shape == (0,)


class TestSyntheticDataset:
    def test_shapes_and_density(self):
        data = make_low_rank_dataset(n_users=50, n_movies=30, rank=4,
                                     density=0.2, seed=0)
        assert data.ratings.shape == (50, 30)
        assert data.ratings.nnz == pytest.approx(0.2 * 50 * 30, abs=2)
        assert data.true_user_factors.shape == (50, 4)
        assert data.true_movie_factors.shape == (30, 4)

    def test_observed_values_match_ground_truth_plus_noise(self):
        data = make_low_rank_dataset(n_users=40, n_movies=25, rank=3,
                                     density=0.3, noise_std=0.0, seed=1)
        users, movies, values = data.ratings.triplets()
        expected = np.einsum("ij,ij->i", data.true_user_factors[users],
                             data.true_movie_factors[movies])
        np.testing.assert_allclose(values, expected, atol=1e-10)

    def test_global_bias_applied(self):
        data = make_low_rank_dataset(n_users=30, n_movies=20, density=0.3,
                                     noise_std=0.0, global_bias=3.0, seed=1)
        assert data.ratings.mean_rating() == pytest.approx(3.0, abs=0.3)

    def test_deterministic(self):
        a = make_low_rank_dataset(n_users=20, n_movies=15, seed=9)
        b = make_low_rank_dataset(n_users=20, n_movies=15, seed=9)
        np.testing.assert_array_equal(a.ratings.triplets()[2], b.ratings.triplets()[2])

    def test_config_overrides(self):
        base = SyntheticConfig(n_users=20, n_movies=10)
        data = make_low_rank_dataset(base, density=0.5)
        assert data.config.n_users == 20
        assert data.config.density == 0.5

    def test_split_included(self):
        data = make_low_rank_dataset(n_users=60, n_movies=40, density=0.2,
                                     test_fraction=0.25, seed=0)
        assert data.split.n_test > 0
        assert data.split.train.nnz + data.split.n_test == data.ratings.nnz

    def test_invalid_config(self):
        with pytest.raises(Exception):
            SyntheticConfig(density=1.5)
        with pytest.raises(Exception):
            SyntheticConfig(noise_std=-1.0)

    def test_true_full_matrix(self):
        data = make_low_rank_dataset(n_users=10, n_movies=8, rank=2, seed=0)
        assert data.true_full_matrix.shape == (10, 8)


class TestChemblLike:
    def test_scaled_shape(self, chembl_tiny):
        config = chembl_tiny.config
        assert config.n_compounds == int(CHEMBL_PAPER_SHAPE["n_compounds"] / config.scale)
        assert chembl_tiny.ratings.shape == (config.n_compounds, config.n_targets)

    def test_activity_count_close_to_requested(self, chembl_tiny):
        requested = chembl_tiny.config.n_activities
        assert chembl_tiny.ratings.nnz == pytest.approx(requested, rel=0.05)

    def test_target_degrees_heavy_tailed(self, chembl_tiny):
        degrees = chembl_tiny.ratings.movie_degrees()
        assert degrees.max() > 5 * max(np.median(degrees), 1)

    def test_values_look_like_pic50(self, chembl_tiny):
        values = chembl_tiny.ratings.triplets()[2]
        assert 3.0 < values.mean() < 10.0

    def test_deterministic(self):
        a = make_chembl_like(scale=500, seed=4)
        b = make_chembl_like(scale=500, seed=4)
        np.testing.assert_array_equal(a.ratings.triplets()[1], b.ratings.triplets()[1])

    def test_no_duplicate_cells(self, chembl_tiny):
        users, movies, _ = chembl_tiny.ratings.triplets()
        keys = users * chembl_tiny.ratings.n_movies + movies
        assert np.unique(keys).shape[0] == keys.shape[0]


class TestMovieLensLike:
    def test_scaled_shape(self):
        data = make_movielens_like(scale=1500, seed=5)
        config = data.config
        assert config.n_users == int(MOVIELENS_PAPER_SHAPE["n_users"] / config.scale)
        assert data.ratings.shape == (config.n_users, config.n_movies)

    def test_star_values_quantised(self):
        data = make_movielens_like(scale=1500, seed=5, discrete_stars=True)
        values = data.ratings.triplets()[2]
        assert values.min() >= 0.5 and values.max() <= 5.0
        np.testing.assert_allclose(values * 2, np.round(values * 2))

    def test_continuous_values_when_disabled(self):
        data = make_movielens_like(scale=1500, seed=5, discrete_stars=False)
        values = data.ratings.triplets()[2]
        assert not np.allclose(values * 2, np.round(values * 2))

    def test_split_present(self):
        data = make_movielens_like(scale=1500, seed=5)
        assert data.split.n_test > 0


class TestScalingWorkload:
    def test_shape_and_positive_degrees(self):
        workload = make_scaling_workload(n_users=2000, n_movies=400,
                                         n_ratings=20_000, seed=0)
        assert workload.shape == (2000, 400)
        # Duplicates shrink the realised count below the request, but it
        # should stay within the same order of magnitude.
        assert 5_000 < workload.nnz <= 20_000
        assert (workload.user_degrees() >= 0).all()

    def test_community_bias_increases_locality(self):
        biased = make_scaling_workload(n_users=1500, n_movies=300, n_ratings=15_000,
                                       community_bias=0.9, n_communities=10, seed=1)
        uniform = make_scaling_workload(n_users=1500, n_movies=300, n_ratings=15_000,
                                        community_bias=0.0, n_communities=10, seed=1)
        from repro.sparse.reorder import bandwidth
        assert bandwidth(biased) < bandwidth(uniform)

    def test_deterministic(self):
        a = make_scaling_workload(n_users=500, n_movies=100, n_ratings=5000, seed=3)
        b = make_scaling_workload(n_users=500, n_movies=100, n_ratings=5000, seed=3)
        assert a.nnz == b.nnz

    def test_invalid_config(self):
        with pytest.raises(Exception):
            ScalingWorkloadConfig(community_bias=1.5)


class TestRegistry:
    def test_available_datasets_nonempty_and_sorted(self):
        names = available_datasets()
        assert "synthetic-small" in names
        assert list(names) == sorted(names)

    def test_load_dataset_returns_ratings_and_split(self):
        ratings, split = load_dataset("synthetic-tiny")
        assert ratings.nnz > 0
        assert split.train.nnz + split.n_test == ratings.nnz

    def test_load_unknown_dataset(self):
        with pytest.raises(ValidationError):
            load_dataset("does-not-exist")

    def test_register_custom_dataset(self):
        spec = DatasetSpec("custom-test-ds", "for tests",
                           lambda: load_dataset("synthetic-tiny"))
        register_dataset(spec)
        try:
            ratings, _ = load_dataset("custom-test-ds")
            assert ratings.nnz > 0
            with pytest.raises(ValueError):
                register_dataset(spec)
            register_dataset(spec, overwrite=True)
        finally:
            # Keep the global registry clean for other tests.
            from repro.datasets import registry as registry_module
            registry_module._REGISTRY.pop("custom-test-ds", None)
