"""Tests for MCMC diagnostics and the top-N recommendation utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diagnostics import (
    ChainDiagnostics,
    effective_sample_size,
    potential_scale_reduction,
    run_chains,
)
from repro.core.priors import BPMFConfig
from repro.core.recommend import (
    ranking_metrics,
    recommend_batch,
    recommend_for_user,
)
from repro.core.state import BPMFState, initialize_state
from repro.utils.validation import ValidationError


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------

class TestPotentialScaleReduction:
    def test_identical_chains_give_one(self, rng):
        chain = rng.normal(size=60)
        chains = np.stack([chain, chain + 1e-12 * rng.normal(size=60)])
        assert potential_scale_reduction(chains) == pytest.approx(1.0, abs=0.05)

    def test_well_mixed_chains_near_one(self, rng):
        chains = rng.normal(size=(4, 200))
        assert potential_scale_reduction(chains) < 1.1

    def test_diverged_chains_large(self, rng):
        chains = np.stack([rng.normal(size=100), rng.normal(size=100) + 10.0])
        assert potential_scale_reduction(chains) > 3.0

    def test_constant_chains(self):
        assert potential_scale_reduction(np.ones((3, 10))) == 1.0

    def test_input_validation(self):
        with pytest.raises(ValidationError):
            potential_scale_reduction(np.ones(10))
        with pytest.raises(ValidationError):
            potential_scale_reduction(np.ones((1, 10)))
        with pytest.raises(ValidationError):
            potential_scale_reduction(np.ones((2, 1)))


class TestEffectiveSampleSize:
    def test_iid_samples_have_high_ess(self, rng):
        trace = rng.normal(size=400)
        assert effective_sample_size(trace) > 200

    def test_highly_correlated_samples_have_low_ess(self, rng):
        # An AR(1) chain with strong autocorrelation.
        n = 400
        trace = np.empty(n)
        trace[0] = 0.0
        for i in range(1, n):
            trace[i] = 0.98 * trace[i - 1] + rng.normal(scale=0.1)
        assert effective_sample_size(trace) < 0.25 * n

    def test_constant_trace(self):
        assert effective_sample_size(np.ones(50)) == 50.0

    def test_bounds(self, rng):
        trace = rng.normal(size=100)
        ess = effective_sample_size(trace)
        assert 1.0 <= ess <= 100.0

    def test_too_short_rejected(self):
        with pytest.raises(ValidationError):
            effective_sample_size(np.array([1.0]))


class TestRunChains:
    def test_summary_fields(self, tiny_dataset):
        config = BPMFConfig(num_latent=3, burn_in=2, n_samples=6, alpha=4.0)
        diagnostics = run_chains(tiny_dataset.split.train, tiny_dataset.split,
                                 config, n_chains=3)
        assert diagnostics.n_chains == 3
        assert diagnostics.traces.shape == (3, 6)
        summary = diagnostics.summary()
        assert summary["r_hat"] > 0.8
        assert 1.0 <= summary["min_ess"] <= 6.0
        assert summary["std_final_rmse"] < 0.3

    def test_converged_chains_have_reasonable_r_hat(self, small_dataset):
        config = BPMFConfig(num_latent=4, burn_in=6, n_samples=10, alpha=8.0)
        diagnostics = run_chains(small_dataset.split.train, small_dataset.split,
                                 config, n_chains=2, seeds=(1, 2))
        # Short chains, loose bound: the point is that independent seeds land
        # in the same region of RMSE space.
        assert diagnostics.r_hat < 2.0

    def test_validation(self, tiny_dataset, tiny_config):
        with pytest.raises(ValidationError):
            run_chains(tiny_dataset.split.train, tiny_dataset.split, tiny_config,
                       n_chains=1)
        with pytest.raises(ValidationError):
            run_chains(tiny_dataset.split.train, tiny_dataset.split, tiny_config,
                       n_chains=3, seeds=(1, 2))


# ---------------------------------------------------------------------------
# recommendation
# ---------------------------------------------------------------------------

@pytest.fixture
def fitted_state(tiny_dataset, tiny_config):
    """A (not converged, but deterministic) state for ranking tests."""
    return initialize_state(tiny_dataset.split.train, tiny_config, 3)


class TestRecommendForUser:
    def test_returns_n_items_sorted_by_score(self, fitted_state):
        recommendation = recommend_for_user(fitted_state, user=0, n=5)
        assert len(recommendation) == 5
        scores = recommendation.scores
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_excludes_already_rated_items(self, fitted_state, tiny_dataset):
        train = tiny_dataset.split.train
        seen, _ = train.user_ratings(0)
        recommendation = recommend_for_user(fitted_state, user=0, n=30,
                                            exclude=train)
        assert not set(recommendation.items.tolist()) & set(seen.tolist())

    def test_offset_shifts_scores(self, fitted_state):
        base = recommend_for_user(fitted_state, user=1, n=3)
        shifted = recommend_for_user(fitted_state, user=1, n=3, offset=10.0)
        np.testing.assert_array_equal(base.items, shifted.items)
        np.testing.assert_allclose(shifted.scores, base.scores + 10.0)

    def test_candidate_restriction(self, fitted_state):
        candidates = np.array([1, 3, 5])
        recommendation = recommend_for_user(fitted_state, user=2, n=10,
                                            candidates=candidates)
        assert set(recommendation.items.tolist()) <= {1, 3, 5}

    def test_empty_candidates(self, fitted_state):
        recommendation = recommend_for_user(fitted_state, user=0, n=5,
                                            candidates=np.array([], dtype=int))
        assert len(recommendation) == 0

    def test_ranks_true_preferences_highly(self):
        """With known factors the top recommendation is the true best item."""
        user_factors = np.array([[1.0, 0.0]])
        movie_factors = np.array([[0.1, 0.0], [5.0, 0.0], [2.0, 0.0]])
        state = BPMFState(user_factors=user_factors, movie_factors=movie_factors,
                          user_prior=None, movie_prior=None)
        recommendation = recommend_for_user(state, user=0, n=2)
        assert recommendation.items[0] == 1
        assert recommendation.items[1] == 2

    def test_invalid_user(self, fitted_state):
        with pytest.raises(ValidationError):
            recommend_for_user(fitted_state, user=10_000)

    def test_as_pairs(self, fitted_state):
        pairs = recommend_for_user(fitted_state, user=0, n=3).as_pairs()
        assert len(pairs) == 3
        assert isinstance(pairs[0][0], int)


class TestRankingMetrics:
    def test_perfect_recommendations(self):
        from repro.sparse.csr import RatingMatrix
        held_out = RatingMatrix.from_arrays(2, 4, [0, 0, 1], [1, 2, 3],
                                            [5.0, 4.0, 5.0])
        user_factors = np.eye(2)
        movie_factors = np.array([[0.0, 0.0], [1.0, 0.0], [0.9, 0.0], [0.0, 1.0]])
        state = BPMFState(user_factors=user_factors, movie_factors=movie_factors,
                          user_prior=None, movie_prior=None)
        recommendations = recommend_batch(state, [0, 1], n=2)
        metrics = ranking_metrics(recommendations, held_out, relevant_threshold=3.0)
        assert metrics["recall"] > 0.7
        assert metrics["mrr"] == pytest.approx(1.0)
        assert metrics["n_users_evaluated"] == 2

    def test_no_relevant_items_rejected(self, fitted_state, tiny_dataset):
        from repro.sparse.csr import RatingMatrix
        empty = RatingMatrix.from_arrays(40, 30, [], [], [])
        recommendations = recommend_batch(fitted_state, [0, 1], n=3)
        with pytest.raises(ValidationError):
            ranking_metrics(recommendations, empty)

    def test_batch_shape(self, fitted_state):
        recommendations = recommend_batch(fitted_state, [0, 1, 2], n=4)
        assert set(recommendations) == {0, 1, 2}
        assert all(len(rec) == 4 for rec in recommendations.values())

    def test_zero_held_out_users_are_skipped_not_nan(self, fitted_state):
        """Users with no held-out items (or outside the held-out matrix, as
        fold-in users are) must be skipped; the metrics of the remaining
        users must come out finite, never NaN."""
        from repro.sparse.csr import RatingMatrix

        # Only user 0 has (relevant) held-out items; user 1 has none and
        # user 35 is beyond the matrix's rows entirely.
        held_out = RatingMatrix.from_arrays(30, 30, [0, 0], [3, 4], [5.0, 4.0])
        recommendations = recommend_batch(fitted_state, [0, 1], n=5)
        recommendations[35] = recommend_for_user(fitted_state, 35, n=5)
        metrics = ranking_metrics(recommendations, held_out,
                                  relevant_threshold=3.0)
        assert metrics["n_users_evaluated"] == 1
        for value in metrics.values():
            assert np.isfinite(value)

    def test_all_users_empty_non_strict_returns_zeros(self, fitted_state):
        from repro.sparse.csr import RatingMatrix

        empty = RatingMatrix.from_arrays(40, 30, [], [], [])
        recommendations = recommend_batch(fitted_state, [0, 1], n=3)
        metrics = ranking_metrics(recommendations, empty, strict=False)
        assert metrics == {"precision": 0.0, "recall": 0.0, "mrr": 0.0,
                           "n_users_evaluated": 0.0}
