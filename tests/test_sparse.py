"""Unit tests for the sparse rating-matrix substrate (COO, CSR/CSC views)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import CooMatrix
from repro.sparse.csr import CompressedAxis, RatingMatrix
from repro.utils.validation import ValidationError


class TestCooConstruction:
    def test_empty(self):
        coo = CooMatrix.empty(5, 4)
        assert coo.nnz == 0
        assert coo.shape == (5, 4)
        assert coo.density == 0.0

    def test_from_triplets(self):
        coo = CooMatrix.from_triplets(3, 3, [(0, 1, 2.0), (2, 0, 1.0)])
        assert coo.nnz == 2
        assert coo.rows.dtype == np.int64
        assert coo.values.dtype == np.float64

    def test_from_triplets_empty_iterable(self):
        coo = CooMatrix.from_triplets(3, 3, [])
        assert coo.nnz == 0

    def test_from_arrays_validates_alignment(self):
        with pytest.raises(ValidationError):
            CooMatrix.from_arrays(3, 3, [0, 1], [0], [1.0, 2.0])

    def test_from_arrays_copies_input(self):
        rows = np.array([0, 1])
        coo = CooMatrix.from_arrays(3, 3, rows, [0, 1], [1.0, 2.0])
        rows[0] = 2
        assert coo.rows[0] == 0

    def test_negative_dimensions_rejected(self):
        with pytest.raises(ValidationError):
            CooMatrix.empty(-1, 3)

    def test_zero_dimensions_allowed(self):
        assert CooMatrix.empty(0, 3).nnz == 0

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValidationError):
            CooMatrix.from_arrays(2, 2, [0, 2], [0, 1], [1.0, 1.0])
        with pytest.raises(ValidationError):
            CooMatrix.from_arrays(2, 2, [0, 1], [0, -1], [1.0, 1.0])

    def test_nan_values_rejected(self):
        with pytest.raises(ValidationError):
            CooMatrix.from_arrays(2, 2, [0], [0], [np.nan])


class TestCooOperations:
    def test_append_chains_and_grows(self):
        coo = CooMatrix.empty(4, 4)
        coo.append(0, 1, 5.0).append([1, 2], [2, 3], [1.0, 2.0])
        assert coo.nnz == 3

    def test_append_misaligned(self):
        with pytest.raises(ValidationError):
            CooMatrix.empty(4, 4).append([0, 1], [1], [1.0, 2.0])

    def test_deduplicate_last_wins(self):
        coo = CooMatrix.from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 9.0), (0, 0, 3.0)])
        dedup = coo.deduplicate()
        assert dedup.nnz == 2
        dense = dedup.to_dense()
        assert dense[0, 0] == 3.0
        assert dense[0, 1] == 9.0

    def test_deduplicate_empty(self):
        assert CooMatrix.empty(2, 2).deduplicate().nnz == 0

    def test_to_dense_nan_for_missing(self):
        coo = CooMatrix.from_triplets(2, 2, [(0, 0, 1.0)])
        dense = coo.to_dense()
        assert dense[0, 0] == 1.0
        assert np.isnan(dense[1, 1])

    def test_transpose(self):
        coo = CooMatrix.from_triplets(2, 3, [(0, 2, 7.0)])
        transposed = coo.transpose()
        assert transposed.shape == (3, 2)
        assert transposed.rows[0] == 2 and transposed.cols[0] == 0

    def test_copy_is_independent(self):
        coo = CooMatrix.from_triplets(2, 2, [(0, 0, 1.0)])
        copy = coo.copy()
        copy.values[0] = 99.0
        assert coo.values[0] == 1.0

    def test_density(self):
        coo = CooMatrix.from_triplets(2, 2, [(0, 0, 1.0)])
        assert coo.density == pytest.approx(0.25)


class TestCompressedAxis:
    def test_invariants_enforced(self):
        with pytest.raises(ValidationError):
            CompressedAxis(indptr=np.array([0, 2, 1]), indices=np.array([0, 1]),
                           values=np.array([1.0, 2.0]))
        with pytest.raises(ValidationError):
            CompressedAxis(indptr=np.array([1, 2]), indices=np.array([0]),
                           values=np.array([1.0]))
        with pytest.raises(ValidationError):
            CompressedAxis(indptr=np.array([0, 1]), indices=np.array([0]),
                           values=np.array([1.0, 2.0]))

    def test_empty_indptr_rejected(self):
        """Length-0 indptr must raise ValidationError, not IndexError."""
        with pytest.raises(ValidationError):
            CompressedAxis(indptr=np.empty(0, dtype=np.int64),
                           indices=np.empty(0, dtype=np.int64),
                           values=np.empty(0))

    def test_minimal_indptr_is_an_empty_axis(self):
        """indptr == [0] is the valid empty axis (n == 0, nnz == 0)."""
        axis = CompressedAxis(indptr=np.zeros(1, dtype=np.int64),
                              indices=np.empty(0, dtype=np.int64),
                              values=np.empty(0))
        assert axis.n == 0
        assert axis.nnz == 0

    def test_degree_and_slice(self, simple_ratings):
        axis = simple_ratings.by_user
        assert axis.n == 4
        assert axis.degree(0) == 2
        movies, values = axis.slice(0)
        assert set(movies.tolist()) == {0, 1}
        assert set(values.tolist()) == {5.0, 3.0}

    def test_iter_nonempty(self):
        matrix = RatingMatrix.from_arrays(3, 2, [0, 2], [0, 1], [1.0, 2.0])
        assert list(matrix.by_user.iter_nonempty()) == [0, 2]


class TestRatingMatrix:
    def test_shape_and_nnz(self, simple_ratings):
        assert simple_ratings.shape == (4, 3)
        assert simple_ratings.nnz == 8
        assert simple_ratings.density == pytest.approx(8 / 12)

    def test_user_and_movie_views_are_consistent(self, simple_ratings):
        # Every (user, movie, value) triplet must appear in both views.
        users, movies, values = simple_ratings.triplets()
        for u, m, v in zip(users, movies, values):
            movie_users, movie_values = simple_ratings.movie_ratings(int(m))
            position = np.nonzero(movie_users == u)[0]
            assert position.shape[0] == 1
            assert movie_values[position[0]] == v

    def test_degrees(self, simple_ratings):
        np.testing.assert_array_equal(simple_ratings.user_degrees(), [2, 2, 2, 2])
        np.testing.assert_array_equal(simple_ratings.movie_degrees(), [3, 3, 2])

    def test_mean_rating(self, simple_ratings):
        expected = (5.0 + 3.0 + 4.0 + 1.0 + 2.0 + 4.5 + 1.0 + 1.5) / 8
        assert simple_ratings.mean_rating() == pytest.approx(expected)

    def test_mean_rating_empty(self):
        empty = RatingMatrix.from_arrays(2, 2, [], [], [])
        assert empty.mean_rating() == 0.0

    def test_from_dense_roundtrip(self, simple_ratings):
        dense = simple_ratings.to_dense()
        rebuilt = RatingMatrix.from_dense(dense)
        np.testing.assert_allclose(rebuilt.to_dense(), dense)

    def test_to_scipy_csr(self, simple_ratings):
        sparse = simple_ratings.to_scipy_csr()
        assert sparse.shape == (4, 3)
        assert sparse.nnz == 8
        assert sparse[0, 0] == 5.0

    def test_transpose_swaps_views(self, simple_ratings):
        transposed = simple_ratings.transpose()
        assert transposed.shape == (3, 4)
        np.testing.assert_array_equal(transposed.user_degrees(),
                                      simple_ratings.movie_degrees())

    def test_duplicate_entries_deduplicated_on_build(self):
        coo = CooMatrix.from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 4.0)])
        matrix = RatingMatrix.from_coo(coo)
        assert matrix.nnz == 1
        _, values = matrix.user_ratings(0)
        assert values[0] == 4.0

    def test_shape_mismatch_between_views_rejected(self):
        good = RatingMatrix.from_arrays(2, 2, [0], [1], [1.0])
        with pytest.raises(ValidationError):
            RatingMatrix(3, 2, good.by_user, good.by_movie)


class TestRatingMatrixPermute:
    def test_permutation_preserves_ratings(self, simple_ratings):
        user_perm = np.array([3, 2, 1, 0])
        movie_perm = np.array([1, 2, 0])
        permuted = simple_ratings.permute(user_perm, movie_perm)
        assert permuted.nnz == simple_ratings.nnz
        # Rating (0, 0, 5.0) must now live at (3, 1).
        movies, values = permuted.user_ratings(3)
        assert 5.0 in values
        assert movies[values.tolist().index(5.0)] == 1

    def test_identity_permutation_is_noop(self, simple_ratings):
        permuted = simple_ratings.permute(np.arange(4), np.arange(3))
        np.testing.assert_allclose(np.nan_to_num(permuted.to_dense()),
                                   np.nan_to_num(simple_ratings.to_dense()))

    def test_invalid_permutation_rejected(self, simple_ratings):
        with pytest.raises(ValidationError):
            simple_ratings.permute(user_perm=np.array([0, 0, 1, 2]))
        with pytest.raises(ValidationError):
            simple_ratings.permute(movie_perm=np.array([0, 1]))

    def test_select_users(self, simple_ratings):
        subset = simple_ratings.select_users(np.array([2, 0]))
        assert subset.shape == (2, 3)
        movies, values = subset.user_ratings(0)  # old user 2
        assert set(movies.tolist()) == {1, 2}
        assert 4.5 in values

    def test_select_users_empty(self, simple_ratings):
        subset = simple_ratings.select_users(np.array([], dtype=int))
        assert subset.shape == (0, 3)
        assert subset.nnz == 0

    def test_triplets_roundtrip(self, simple_ratings):
        users, movies, values = simple_ratings.triplets()
        rebuilt = RatingMatrix.from_arrays(4, 3, users, movies, values)
        np.testing.assert_allclose(np.nan_to_num(rebuilt.to_dense()),
                                   np.nan_to_num(simple_ratings.to_dense()))
