"""Unit tests for the unified metrics registry (repro.obs.metrics).

The contract under test: counters/gauges/histograms are cheap,
thread-safe and sample-free (histograms derive p50/p95/p99 from bucket
counts alone), and the registry renders everything — native metrics and
registered stats providers — into one flat dotted snapshot.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    dotted_stats,
)


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------

def test_counter_increments_and_is_thread_safe():
    counter = Counter()
    counter.inc()
    counter.inc(4)
    assert counter.value == 5

    threads = [threading.Thread(
        target=lambda: [counter.inc() for _ in range(1000)])
        for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 5 + 4000


def test_gauge_set_add_and_snapshot():
    gauge = Gauge()
    gauge.set(7.5)
    assert gauge.value == 7.5
    gauge.add(-2.5)
    assert gauge.snapshot_value() == 5.0


def test_default_latency_buckets_are_sorted():
    assert list(LATENCY_BUCKETS_MS) == sorted(LATENCY_BUCKETS_MS)
    with pytest.raises(ValueError):
        Histogram(bounds=(3.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(bounds=())


def test_histogram_percentiles_without_samples():
    hist = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
    for value in (0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 7.0, 7.0, 7.0, 7.0):
        hist.observe(value)
    summary = hist.snapshot_value()
    assert summary["count"] == 10
    assert summary["sum"] == pytest.approx(40.5)
    assert summary["min"] == 0.5
    assert summary["max"] == 7.0
    # Every estimate must land inside its owning bucket (the documented
    # error bound), clamped by the recorded min/max.
    assert 1.0 <= summary["p50"] <= 4.0
    assert 4.0 <= summary["p95"] <= 7.0
    assert 4.0 <= summary["p99"] <= 7.0
    assert hist.percentile(0.0) <= hist.percentile(0.5) \
        <= hist.percentile(1.0)


def test_histogram_overflow_bucket_reports_recorded_max():
    hist = Histogram(bounds=(1.0,))
    hist.observe(250.0)
    hist.observe(500.0)
    summary = hist.snapshot_value()
    assert summary["max"] == 500.0
    assert summary["p99"] <= 500.0
    assert summary["p99"] >= 250.0


def test_empty_histogram_is_all_zero():
    hist = Histogram()
    assert hist.percentile(0.99) == 0.0
    summary = hist.snapshot_value()
    assert summary["count"] == 0
    assert summary["min"] is None and summary["max"] is None


def test_histogram_rejects_out_of_range_quantile():
    with pytest.raises(ValueError):
        Histogram().percentile(1.5)


# ---------------------------------------------------------------------------
# dotted flattening
# ---------------------------------------------------------------------------

def test_dotted_stats_flattens_nested_dicts():
    flat = dotted_stats("serving.service", {
        "n_folded_in": 2,
        "wal": {"appended": 3, "ship": {"failures": 0}},
        "classes": [1, 2],
    })
    assert flat == {
        "serving.service.n_folded_in": 2,
        "serving.service.wal.appended": 3,
        "serving.service.wal.ship.failures": 0,
        "serving.service.classes": [1, 2],
    }


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_get_or_create_and_kind_mismatch():
    registry = MetricsRegistry()
    counter = registry.counter("a.b.requests")
    assert registry.counter("a.b.requests") is counter
    with pytest.raises(TypeError):
        registry.gauge("a.b.requests")
    with pytest.raises(TypeError):
        registry.histogram("a.b.requests")


def test_registry_labels_disambiguate_and_render_sorted():
    registry = MetricsRegistry()
    registry.counter("fleet.requests", replica=0).inc(2)
    registry.counter("fleet.requests", replica=1).inc(5)
    snapshot = registry.snapshot()
    assert snapshot["fleet.requests{replica=0}"] == 2
    assert snapshot["fleet.requests{replica=1}"] == 5
    # Label order is canonical: sorted by key regardless of call order.
    registry.gauge("g", b=1, a=2).set(3)
    assert "g{a=2,b=1}" in registry.snapshot()
    assert "fleet.requests{replica=0}" in registry.names()


def test_registry_snapshot_includes_histogram_summaries():
    registry = MetricsRegistry()
    registry.histogram("rpc.latency_ms").observe(1.25)
    summary = registry.snapshot()["rpc.latency_ms"]
    assert summary["count"] == 1
    assert summary["p50"] == pytest.approx(1.25, abs=LATENCY_BUCKETS_MS[-1])


def test_providers_flatten_replace_and_fail_soft():
    registry = MetricsRegistry()
    registry.register_provider(
        "serving.server", lambda: {"requests": 7, "shed": {"read": 1}},
        replica=0)
    snapshot = registry.snapshot()
    assert snapshot["serving.server.requests{replica=0}"] == 7
    assert snapshot["serving.server.shed.read{replica=0}"] == 1

    # Same (prefix, labels) replaces — what a restarted replica wants.
    registry.register_provider("serving.server", lambda: {"requests": 9},
                               replica=0)
    assert registry.snapshot()[
        "serving.server.requests{replica=0}"] == 9

    # A raising or non-dict provider is skipped, never poisons snapshot.
    registry.register_provider("broken", lambda: 1 / 0)
    registry.register_provider("scalar", lambda: 42)
    snapshot = registry.snapshot()
    assert snapshot["serving.server.requests{replica=0}"] == 9
    assert not any(key.startswith(("broken", "scalar"))
                   for key in snapshot)

    registry.unregister_provider("serving.server", replica=0)
    assert "serving.server.requests{replica=0}" not in registry.snapshot()
