"""PredictionService tests: parity with the in-memory paths, caching,
micro-batching, multi-snapshot pooling and cold-start fold-in serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gibbs import GibbsSampler, SamplerOptions
from repro.core.priors import BPMFConfig
from repro.core.recommend import recommend_for_user
from repro.core.state import BPMFState
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.serving.checkpoint import (
    CheckpointConfig,
    load_snapshot,
    save_snapshot,
    snapshot_from_result,
)
from repro.serving.service import MicroBatcher, PredictionService
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def data():
    return make_low_rank_dataset(SyntheticConfig(
        n_users=50, n_movies=35, rank=3, density=0.3, noise_std=0.25,
        test_fraction=0.2, seed=31))


@pytest.fixture(scope="module")
def snapshot_path(data, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving") / "model.npz"
    config = BPMFConfig(num_latent=5, alpha=4.0, burn_in=2, n_samples=4)
    options = SamplerOptions(checkpoint=CheckpointConfig(path=path, offset=0.0))
    GibbsSampler(config, options).run(data.split.train, data.split, seed=3)
    return path


@pytest.fixture(scope="module")
def snapshot(snapshot_path):
    return load_snapshot(snapshot_path)


class TestPredict:
    def test_batch_matches_state_predict(self, data, snapshot):
        service = PredictionService(snapshot, mode="last")
        users, movies, _ = data.split.test_triplets()
        np.testing.assert_allclose(
            service.predict_batch(users, movies),
            snapshot.state.predict(users, movies), rtol=1e-12, atol=1e-12)

    def test_mean_mode_uses_posterior_mean_factors(self, snapshot):
        service = PredictionService(snapshot, mode="mean")
        mean_state = snapshot.posterior_mean_state()
        np.testing.assert_allclose(
            service.predict(3, 7),
            float(mean_state.predict(np.array([3]), np.array([7]))[0]),
            rtol=1e-12)

    def test_offset_and_clip_applied(self, snapshot):
        service = PredictionService(snapshot, clip=(0.0, 0.1))
        scores = service.predict_batch(np.arange(5), np.arange(5))
        assert (scores >= 0.0).all() and (scores <= 0.1).all()

    def test_scalar_predict(self, snapshot):
        service = PredictionService(snapshot)
        assert isinstance(service.predict(0, 0), float)

    def test_out_of_range_rejected(self, snapshot):
        service = PredictionService(snapshot)
        with pytest.raises(ValidationError):
            service.predict(service.n_users, 0)
        with pytest.raises(ValidationError):
            service.predict(-1, 0)
        with pytest.raises(ValidationError):
            service.predict(0, service.n_items)
        with pytest.raises(ValidationError):
            service.predict_batch(np.array([0, 1]), np.array([0]))

    def test_loads_from_path(self, snapshot_path):
        assert PredictionService(snapshot_path).n_items == 35


class TestTopN:
    def test_matches_recommend_for_user(self, data, snapshot):
        """Acceptance criterion: snapshot top_n == in-memory recommendation."""
        service = PredictionService(snapshot, mode="last",
                                    train=data.split.train)
        for user in (0, 7, 23):
            served = service.top_n(user, n=8)
            reference = recommend_for_user(snapshot.state, user, n=8,
                                           exclude=data.split.train)
            assert served.items.tolist() == reference.items.tolist()
            np.testing.assert_allclose(served.scores, reference.scores,
                                       rtol=1e-9, atol=1e-12)

    def test_without_exclusion_ranks_all_items(self, snapshot):
        service = PredictionService(snapshot, mode="last")
        served = service.top_n(2, n=8, exclude_seen=False)
        reference = recommend_for_user(snapshot.state, 2, n=8)
        assert served.items.tolist() == reference.items.tolist()

    def test_batch_api(self, data, snapshot):
        service = PredictionService(snapshot, train=data.split.train)
        ranked = service.top_n_batch([0, 1, 2], n=4)
        assert set(ranked) == {0, 1, 2}
        assert all(len(rec) == 4 for rec in ranked.values())

    def test_lru_cache_hits_and_bounded(self, snapshot):
        service = PredictionService(snapshot, cache_size=2)
        service.top_n(0, n=3)
        service.top_n(0, n=5)  # same user: cached score vector
        assert service.cache_hits == 1 and service.cache_misses == 1
        service.top_n(1, n=3)
        service.top_n(2, n=3)  # evicts user 0 (capacity 2)
        service.top_n(0, n=3)
        assert service.cache_misses == 4
        assert len(service._score_cache) <= 2

    def test_cached_scores_are_immutable(self, snapshot):
        service = PredictionService(snapshot)
        scores = service._user_scores(0)
        with pytest.raises(ValueError):
            scores[0] = 99.0

    def test_add_ratings_invalidates_the_users_cached_scores(self, snapshot):
        service = PredictionService(snapshot)
        cold = service.fold_in(np.array([0, 1]), np.array([4.0, 3.0]))
        stale = service.top_n(cold, n=5)
        assert service.cache_invalidations == 0
        service.add_ratings(cold, np.array([2]), np.array([5.0]))
        assert service.cache_invalidations == 1
        fresh = service.top_n(cold, n=5)
        # The row changed, so the recomputed scores must differ and the
        # lookup must register a miss, not serve the stale vector.
        assert fresh.scores.tobytes() != stale.scores.tobytes()
        assert service.cache_misses == 2 and service.cache_hits == 0
        stats = service.stats()
        assert stats["cache_invalidations"] == 1
        assert stats["n_folded_in"] == 1
        assert stats["cache_entries"] == 1

    def test_add_ratings_without_cache_entry_counts_nothing(self, snapshot):
        service = PredictionService(snapshot)
        cold = service.fold_in(np.array([0]), np.array([4.0]))
        service.add_ratings(cold, np.array([1]), np.array([2.0]))
        assert service.cache_invalidations == 0


class TestFoldInServing:
    def test_fold_in_user_served_like_a_trained_user(self, data, snapshot):
        """Acceptance criterion: top_n parity holds for a fold-in user."""
        service = PredictionService(snapshot, mode="last",
                                    train=data.split.train)
        items = np.array([1, 4, 9, 16])
        values = np.array([4.0, 3.5, 2.0, 5.0])
        cold = service.fold_in(items, values)
        assert cold == snapshot.state.n_users
        served = service.top_n(cold, n=6)

        # Reference: append the folded vector to the in-memory state and
        # run the ordinary recommendation path on it.
        augmented = BPMFState(
            user_factors=np.vstack([snapshot.state.user_factors,
                                    service._user_factors[cold]]),
            movie_factors=snapshot.state.movie_factors,
            user_prior=snapshot.state.user_prior,
            movie_prior=snapshot.state.movie_prior)
        reference = recommend_for_user(augmented, cold, n=6)
        assert served.items.tolist() == reference.items.tolist()
        np.testing.assert_allclose(served.scores, reference.scores,
                                   rtol=1e-9, atol=1e-12)

    def test_many_fold_ins_grow_the_buffer_correctly(self, snapshot, rng):
        """Sequential registrations survive buffer doubling intact."""
        service = PredictionService(snapshot, mode="last")
        base = snapshot.state.n_users
        expected = {}
        for i in range(70):  # more than the initial 50-row capacity
            items = np.array([i % service.n_items])
            values = np.array([float(i % 5)])
            user = service.fold_in(items, values)
            assert user == base + i
            expected[user] = service._user_factors[user].copy()
        for user, row in expected.items():
            np.testing.assert_array_equal(service._user_factors[user], row)
        # Original training rows were never disturbed by the growth.
        np.testing.assert_array_equal(service._user_factors[:base],
                                      snapshot.state.user_factors)

    def test_fold_in_batch_ids_and_predictions(self, snapshot):
        service = PredictionService(snapshot)
        ids = service.fold_in_batch(
            [np.array([0, 1]), np.array([2])],
            [np.array([4.0, 2.0]), np.array([3.0])])
        assert ids == [service.n_train_users, service.n_train_users + 1]
        assert np.isfinite(service.predict(ids[1], 5))

    def test_fold_in_removes_offset(self, data, tmp_path):
        config = BPMFConfig(num_latent=5, alpha=4.0, burn_in=1, n_samples=2)
        result = GibbsSampler(config).run(data.split.train, data.split, seed=3)
        path = tmp_path / "off.npz"
        save_snapshot(snapshot_from_result(result, offset=3.0), path)
        service = PredictionService(path)
        # Rating 3.0 == the offset, so the centred value is 0: folding in on
        # it must equal folding in the centred rating with no offset.
        cold = service.fold_in(np.array([2]), np.array([3.0]))
        plain = PredictionService(snapshot_from_result(result, offset=0.0))
        cold_plain = plain.fold_in(np.array([2]), np.array([0.0]))
        np.testing.assert_allclose(service._user_factors[cold],
                                   plain._user_factors[cold_plain],
                                   rtol=1e-12, atol=1e-12)


class TestMicroBatcher:
    def test_batches_resolve_to_individual_predictions(self, snapshot):
        service = PredictionService(snapshot)
        batcher = service.batcher(max_batch=4)
        handles = [batcher.submit(user, item)
                   for user, item in [(0, 1), (2, 3), (4, 5)]]
        assert not any(handle.done for handle in handles)
        batcher.flush()
        for handle in handles:
            assert handle.result() == pytest.approx(
                service.predict(handle.user, handle.item))

    def test_auto_flush_at_capacity(self, snapshot):
        service = PredictionService(snapshot)
        batcher = MicroBatcher(service, max_batch=2)
        first = batcher.submit(0, 0)
        assert not first.done
        batcher.submit(1, 1)  # hits max_batch -> auto flush
        assert first.done and batcher.n_flushes == 1

    def test_result_triggers_flush(self, snapshot):
        batcher = PredictionService(snapshot).batcher()
        handle = batcher.submit(3, 3)
        assert batcher.result(handle) == pytest.approx(handle.result())

    def test_unresolved_result_raises(self, snapshot):
        batcher = PredictionService(snapshot).batcher()
        handle = batcher.submit(0, 0)
        with pytest.raises(ValidationError, match="queued"):
            handle.result()

    def test_bad_submit_rejected_without_poisoning_queue(self, snapshot):
        service = PredictionService(snapshot)
        batcher = service.batcher()
        good = batcher.submit(0, 0)
        with pytest.raises(ValidationError):
            batcher.submit(service.n_users + 5, 0)
        batcher.flush()
        assert good.done


class TestMultiSnapshot:
    def test_mean_mode_pools_accumulators(self, data, tmp_path):
        config = BPMFConfig(num_latent=5, alpha=4.0, burn_in=1, n_samples=3)
        paths = []
        snaps = []
        for seed in (0, 1):
            result = GibbsSampler(config).run(data.split.train, data.split,
                                              seed=seed)
            snap = snapshot_from_result(result)
            path = tmp_path / f"chain{seed}.npz"
            save_snapshot(snap, path)
            paths.append(path)
            snaps.append(snap)
        service = PredictionService(paths, mode="mean")
        assert service.n_snapshots == 2
        total = snaps[0].mean_count + snaps[1].mean_count
        expected = (snaps[0].mean_user_sum + snaps[1].mean_user_sum) / total
        np.testing.assert_allclose(service._user_factors, expected,
                                   rtol=1e-12, atol=1e-12)

    def test_last_mode_averages_states(self, data, snapshot):
        service = PredictionService([snapshot, snapshot], mode="last")
        np.testing.assert_allclose(service._user_factors,
                                   snapshot.state.user_factors,
                                   rtol=1e-12, atol=1e-12)

    def test_shape_mismatch_rejected(self, data, snapshot, tmp_path):
        other_data = make_low_rank_dataset(SyntheticConfig(
            n_users=20, n_movies=15, rank=2, density=0.4, seed=1))
        config = BPMFConfig(num_latent=5, alpha=4.0, burn_in=1, n_samples=1)
        result = GibbsSampler(config).run(other_data.split.train,
                                          other_data.split, seed=0)
        with pytest.raises(ValidationError, match="shapes"):
            PredictionService([snapshot, snapshot_from_result(result)])

    def test_offset_mismatch_rejected(self, data, snapshot):
        config = BPMFConfig(num_latent=5, alpha=4.0, burn_in=2, n_samples=4)
        result = GibbsSampler(config).run(data.split.train, data.split, seed=3)
        shifted = snapshot_from_result(result, offset=2.0)
        with pytest.raises(ValidationError, match="offset"):
            PredictionService([snapshot, shifted])

    def test_empty_snapshot_list_rejected(self):
        with pytest.raises(ValidationError):
            PredictionService([])

    def test_train_shape_checked(self, snapshot, data):
        wrong = make_low_rank_dataset(SyntheticConfig(
            n_users=10, n_movies=8, rank=2, density=0.5, seed=2))
        with pytest.raises(ValidationError, match="train"):
            PredictionService(snapshot, train=wrong.split.train)
