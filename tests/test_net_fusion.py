"""QueryFuser failure-containment tests, sans sockets.

The fuser is transport-agnostic (a loop plus a ``top_n_batch``
callable), so the failure modes the PR fixes are pinned directly:

* one invalid user in a fused window must not poison its co-fused
  neighbours — the window is partitioned and only the offender errors,
  with the valid results bit-identical to a clean batch;
* a user missing from the batch result mapping must resolve to a
  ``LookupError`` — never a hang (the old ``results[user]`` lookup threw
  inside a done-callback and left every later future pending forever);
* dispatch is eager: a lone caller pays no window latency, and windows
  accumulating behind an in-flight batch flush on its completion.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.serving.net.fusion import QueryFuser


class _Gateway:
    """A fake batch entry point with programmable failures."""

    def __init__(self, n_items: int = 20, poison=(), drop=()):
        self.poison = set(poison)   # users that raise for the whole batch
        self.drop = set(drop)       # users silently absent from results
        self.n_items = n_items
        self.calls: list[list[int]] = []
        self.lock = threading.Lock()

    def top_n_batch(self, users, n=10, exclude_seen=True):
        with self.lock:
            self.calls.append(list(users))
        bad = self.poison.intersection(users)
        if bad:
            raise ValueError(f"invalid users {sorted(bad)}")
        rng_free = {}
        for user in dict.fromkeys(int(u) for u in users):
            if user in self.drop:
                continue
            rng = np.random.default_rng(user)
            items = rng.permutation(self.n_items)[:n].astype(np.int64)
            scores = rng.standard_normal(n)
            rng_free[user] = (items, scores)
        return rng_free


def _run(coro):
    return asyncio.run(coro)


def test_lone_request_dispatches_eagerly_as_window_of_one():
    gateway = _Gateway()
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=10_000.0)
        items, scores = await fuser.top_n(3, n=5)
        assert items.shape == (5,)
        return fuser.stats()
    stats = _run(scenario())
    # A 10-second fallback window added no latency: the request went out
    # on the next loop pass (the test would time out otherwise).
    assert stats["fusion_windows"] == 1
    assert gateway.calls == [[3]]


def test_concurrent_requests_fuse_and_match_singletons():
    gateway = _Gateway()
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=5.0)
        results = await asyncio.gather(*[fuser.top_n(user, n=4)
                                         for user in (1, 2, 3, 2)])
        return fuser.stats(), results
    stats, results = _run(scenario())
    assert stats["fusion_requests"] == 4
    for user, (items, scores) in zip((1, 2, 3, 2), results):
        solo_items, solo_scores = gateway.top_n_batch([user], n=4)[user]
        assert items.tolist() == solo_items.tolist()
        assert scores.tobytes() == solo_scores.tobytes()


def test_poisoned_window_partitions_only_the_offender_errors():
    gateway = _Gateway(poison={99})
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=5.0)
        return await asyncio.gather(
            *[fuser.top_n(user, n=4) for user in (1, 99, 2, 3)],
            return_exceptions=True), fuser.stats()
    results, stats = _run(scenario())
    assert isinstance(results[1], ValueError)
    for user, result in zip((1, 2, 3), (results[0], results[2], results[3])):
        assert not isinstance(result, BaseException), result
        items, scores = result
        solo_items, solo_scores = gateway.top_n_batch([user], n=4)[user]
        assert items.tolist() == solo_items.tolist()
        assert scores.tobytes() == solo_scores.tobytes()
    assert stats["fusion_partitions"] >= 1


def test_singleton_poisoned_window_skips_the_retry():
    gateway = _Gateway(poison={99})
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=5.0)
        with pytest.raises(ValueError, match="invalid users"):
            await fuser.top_n(99, n=4)
        return fuser.stats()
    stats = _run(scenario())
    assert stats["fusion_partitions"] == 0
    assert gateway.calls == [[99]]  # no pointless singleton re-run


def test_missing_user_resolves_with_lookup_error_not_a_hang():
    gateway = _Gateway(drop={7})
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=5.0)
        results = await asyncio.wait_for(
            asyncio.gather(*[fuser.top_n(user, n=4) for user in (7, 1, 2)],
                           return_exceptions=True),
            timeout=10.0)
        await fuser.drain()
        return results
    results = _run(scenario())
    assert isinstance(results[0], LookupError)
    assert "user 7 missing" in str(results[0])
    for result in results[1:]:
        assert not isinstance(result, BaseException), result


def test_missing_user_in_partition_retry_also_gets_lookup_error():
    # Poison forces the partition path; the dropped user then comes back
    # empty from its singleton retry as well.
    gateway = _Gateway(poison={99}, drop={7})
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=5.0)
        return await asyncio.wait_for(
            asyncio.gather(*[fuser.top_n(user, n=4) for user in (7, 99, 1)],
                           return_exceptions=True),
            timeout=10.0)
    results = _run(scenario())
    assert isinstance(results[0], LookupError)
    assert isinstance(results[1], ValueError)
    assert not isinstance(results[2], BaseException)


def test_windows_accumulate_behind_in_flight_batch_then_flush():
    release = threading.Event()
    gateway = _Gateway()
    inner = gateway.top_n_batch

    def slow_batch(users, n=10, exclude_seen=True):
        result = inner(users, n=n, exclude_seen=exclude_seen)
        release.wait(timeout=10.0)
        return result

    async def scenario():
        fuser = QueryFuser(slow_batch, window_ms=10_000.0)
        first = asyncio.ensure_future(fuser.top_n(1, n=4))
        await asyncio.sleep(0.05)  # first batch now in flight
        laters = [asyncio.ensure_future(fuser.top_n(user, n=4))
                  for user in (2, 3, 4)]
        await asyncio.sleep(0.05)  # newcomers accumulate, none dispatched
        assert len(gateway.calls) == 1
        release.set()
        await asyncio.wait_for(asyncio.gather(first, *laters), timeout=10.0)
        return fuser.stats()

    stats = _run(scenario())
    # The 10-second fallback timer never fired: completion flushed the
    # accumulated window, and it went out as one fused batch.
    assert stats["fusion_windows"] == 2
    assert stats["fusion_max_window"] == 3
    assert sorted(gateway.calls[1]) == [2, 3, 4]


def test_drain_settles_everything():
    gateway = _Gateway(drop={5})
    async def scenario():
        fuser = QueryFuser(gateway.top_n_batch, window_ms=50.0)
        futures = [asyncio.ensure_future(fuser.top_n(user, n=4))
                   for user in (5, 6)]
        await asyncio.sleep(0)  # let the requests enqueue
        await fuser.drain()
        assert all(future.done() for future in futures)
        assert isinstance(futures[0].exception(), LookupError)
        assert futures[1].exception() is None
    _run(scenario())
