"""Graceful shutdown of the serving paths: pools closed, segments unlinked.

Extends the PR 3 kill-mid-sweep discipline to serving: SIGTERM (or
Ctrl-C) on ``serve --shards N`` — stdin or TCP — must stop the worker
pool and unlink every shared-memory segment.  The in-process tests
assert the unlink directly by segment name (the PR 3 pattern); the
subprocess tests assert a clean exit code and, critically, that the
resource tracker reports **no leaked shared_memory objects** on exit.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.serving.__main__ import _serve_repl
from repro.serving.checkpoint import save_snapshot
from repro.serving.cluster import ShardedScorer, SnapshotWatcher

REPO_ROOT = Path(__file__).resolve().parent.parent
N_USERS, N_ITEMS, K = 40, 29, 4


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("shutdown") / "model.npz"
    save_snapshot(make_bench_snapshot(N_USERS, N_ITEMS, K, seed=9), path)
    return path


def _segment_names(scorer: ShardedScorer) -> list:
    version = scorer._active
    return [block.name for block in version.item_blocks] \
        + [version.user_block.name]


def _assert_unlinked(segment_names) -> None:
    for name in segment_names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class _InterruptedStdin:
    """A stdin that serves one command, then delivers the interrupt.

    ``close`` is required: the gateway's forked workers run
    ``multiprocessing``'s child bootstrap, which closes ``sys.stdin``.
    """

    def __init__(self, lines):
        self._lines = list(lines)

    def __iter__(self):
        yield from self._lines
        raise KeyboardInterrupt

    def close(self):
        pass


def test_keyboard_interrupt_closes_pool_and_unlinks_segments(
        snapshot_path, monkeypatch, capsys):
    scorer = ShardedScorer(snapshot_path, n_shards=2)
    watcher = SnapshotWatcher(scorer, snapshot_path, interval=0.1).start()
    names = _segment_names(scorer)
    monkeypatch.setattr("sys.stdin", _InterruptedStdin(["top 0 3\n"]))
    code = _serve_repl(scorer, watcher, "2-shard gateway", "mean",
                       owns_service=True)
    assert code == 0
    lines = capsys.readouterr().out.splitlines()
    assert len(lines) == 2  # banner + the answered query
    assert not watcher.running
    assert not scorer.pool_running
    _assert_unlinked(names)


def _spawn_serve(snapshot_path, *extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serving", "serve",
         "--snapshot", str(snapshot_path), *extra_args],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, env=env, cwd=str(REPO_ROOT))


def _read_banner(process, timeout: float = 60.0) -> bytes:
    deadline = time.monotonic() + timeout
    line = process.stdout.readline()
    assert line, f"no banner before exit (rc={process.poll()})"
    assert time.monotonic() < deadline
    return line


@pytest.mark.parametrize("extra", [
    ("--shards", "2"),
    ("--shards", "2", "--watch"),
])
def test_sigterm_on_stdin_serve_exits_cleanly_without_leaks(
        snapshot_path, extra):
    process = _spawn_serve(snapshot_path, *extra)
    try:
        banner = _read_banner(process)
        assert b"2-shard gateway" in banner
        # One served query proves the pool is up before the signal.
        process.stdin.write(b"top 0 3\n")
        process.stdin.flush()
        assert process.stdout.readline().strip()
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60.0)
    finally:
        if process.poll() is None:  # pragma: no cover - wedged child
            process.kill()
            process.communicate(timeout=30.0)
    assert process.returncode == 0, stderr.decode()
    assert b"leaked" not in stderr, stderr.decode()
    assert b"Traceback" not in stderr, stderr.decode()


def test_sigterm_on_tcp_serve_drains_and_exits_cleanly(snapshot_path):
    process = _spawn_serve(snapshot_path, "--tcp", "127.0.0.1:0",
                           "--replicas", "2", "--shards", "2",
                           "--fuse-window", "2")
    try:
        banner = _read_banner(process)
        assert b"over tcp" in banner and b"2 replicas" in banner
        process.send_signal(signal.SIGTERM)
        stdout, stderr = process.communicate(timeout=60.0)
    finally:
        if process.poll() is None:  # pragma: no cover - wedged child
            process.kill()
            process.communicate(timeout=30.0)
    assert process.returncode == 0, stderr.decode()
    assert b"draining" in stdout
    assert b"leaked" not in stderr, stderr.decode()
    assert b"Traceback" not in stderr, stderr.decode()


def test_quit_still_tears_down_the_gateway(snapshot_path):
    """The non-signal path keeps the same teardown guarantees."""
    process = _spawn_serve(snapshot_path, "--shards", "2")
    try:
        _read_banner(process)
        stdout, stderr = process.communicate(b"top 0 3\nquit\n",
                                             timeout=60.0)
    finally:
        if process.poll() is None:  # pragma: no cover - wedged child
            process.kill()
            process.communicate(timeout=30.0)
    assert process.returncode == 0, stderr.decode()
    assert stdout.strip()
    assert b"leaked" not in stderr, stderr.decode()
