"""Shared fixtures for the test-suite.

Fixtures are deliberately tiny (tens of users/movies, a handful of Gibbs
sweeps) so the whole suite stays fast; statistical assertions use loose
tolerances appropriate for those sizes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priors import BPMFConfig
from repro.datasets.chembl import ChemblLikeConfig, make_chembl_like
from repro.datasets.synthetic import SyntheticConfig, make_low_rank_dataset
from repro.sparse.coo import CooMatrix
from repro.sparse.csr import RatingMatrix


@pytest.fixture
def rng():
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset():
    """Ground-truth low-rank dataset small enough for per-test Gibbs runs."""
    return make_low_rank_dataset(SyntheticConfig(
        n_users=40, n_movies=30, rank=3, density=0.3, noise_std=0.25,
        test_fraction=0.2, seed=101))


@pytest.fixture(scope="session")
def small_dataset():
    """Slightly larger dataset for accuracy-oriented tests."""
    return make_low_rank_dataset(SyntheticConfig(
        n_users=120, n_movies=90, rank=5, density=0.15, noise_std=0.3,
        test_fraction=0.2, seed=202))


@pytest.fixture(scope="session")
def chembl_tiny():
    """A ChEMBL-like workload with heavy-tailed target degrees."""
    return make_chembl_like(ChemblLikeConfig(scale=400.0, seed=11))


@pytest.fixture(scope="session")
def tiny_config():
    """A BPMF configuration sized for the tiny dataset."""
    return BPMFConfig(num_latent=3, burn_in=3, n_samples=5, alpha=4.0)


@pytest.fixture
def simple_ratings():
    """A hand-written 4x3 rating matrix with a known pattern.

    ::

        users\\movies   0     1     2
            0          5.0   3.0    -
            1          4.0    -    1.0
            2           -    2.0   4.5
            3          1.0   1.5    -
    """
    coo = CooMatrix.from_triplets(4, 3, [
        (0, 0, 5.0), (0, 1, 3.0),
        (1, 0, 4.0), (1, 2, 1.0),
        (2, 1, 2.0), (2, 2, 4.5),
        (3, 0, 1.0), (3, 1, 1.5),
    ])
    return RatingMatrix.from_coo(coo)
