"""TCP serving frontend: wire parity, fusion, handshake, drain.

The load-bearing guarantee carries over from the cluster tests: whatever
transport or batching sits in front, a served ``top_n`` must be
bit-identical to the single-process :class:`PredictionService` — fused
windows included, exact ties included.  Servers here run through
:class:`ReplicaSet` (one replica unless stated), which is also how the
CLI runs them.
"""

from __future__ import annotations

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro.bench.serving import make_bench_snapshot
from repro.serving.cluster import ShardedScorer
from repro.serving.net import (
    Frame,
    FrameDecoder,
    NetError,
    PROTOCOL_VERSION,
    ReplicaSet,
    ServingClient,
    encode_frame,
)
from repro.serving.net.client import _SyncConnection
from repro.serving.service import PredictionService

N_USERS, N_ITEMS, K = 50, 37, 4


@pytest.fixture(scope="module")
def snapshot():
    """Random posterior with exact score ties (duplicated item rows)."""
    snap = make_bench_snapshot(N_USERS, N_ITEMS, K, seed=3)
    snap.state.movie_factors[30] = snap.state.movie_factors[2]
    snap.state.movie_factors[35] = snap.state.movie_factors[2]
    return snap


@pytest.fixture(scope="module")
def reference(snapshot):
    return PredictionService(snapshot)


@pytest.fixture()
def replica_set(snapshot):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1) as replicas:
        yield replicas


def _assert_same_recommendation(expected, served):
    assert expected.items.tolist() == served.items.tolist()
    assert expected.scores.tobytes() == served.scores.tobytes()


# ---------------------------------------------------------------------------
# wire-level parity
# ---------------------------------------------------------------------------

def test_top_n_and_predict_are_bit_identical_over_the_wire(replica_set,
                                                           reference):
    with ServingClient(replica_set.addresses) as client:
        for user in (0, 1, 17, N_USERS - 1):
            _assert_same_recommendation(reference.top_n(user, n=8),
                                        client.top_n(user, n=8))
        served = client.predict(4, 7)
        assert served == reference.predict(4, 7)
        batch = client.top_n_batch([0, 2, 5], n=6)
        expected = reference.top_n_batch([0, 2, 5], n=6)
        for user in expected:
            _assert_same_recommendation(expected[user], batch[user])


def test_foldin_rate_stats_and_health(replica_set, snapshot):
    oracle = PredictionService(snapshot)
    with ServingClient(replica_set.addresses) as client:
        items = np.array([0, 12, 36])
        values = np.array([4.0, 2.0, 5.0])
        cold = client.fold_in(items, values)
        assert cold == oracle.fold_in(items, values)
        _assert_same_recommendation(oracle.top_n(cold, n=6),
                                    client.top_n(cold, n=6))
        assert client.rate(cold, np.array([5, 6]),
                           np.array([2.0, 4.5])) == cold
        oracle.add_ratings(cold, np.array([5, 6]), np.array([2.0, 4.5]))
        _assert_same_recommendation(oracle.top_n(cold, n=6),
                                    client.top_n(cold, n=6))
        stats = client.stats()
        assert stats["n_folded_in"] == 1
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["n_users"] == N_USERS + 1
        assert health["server"]["n_requests"] > 0


def test_domain_errors_come_back_as_error_frames_not_failover(replica_set):
    with ServingClient(replica_set.addresses) as client:
        with pytest.raises(NetError, match="outside"):
            client.top_n(N_USERS + 5, n=3)
        with pytest.raises(NetError, match="outside"):
            client.predict(0, N_ITEMS + 1)
        # The connection survives a domain error: next request is served.
        assert len(client.top_n(0, n=3)) == 3
        assert client.n_failovers == 0


def test_sharded_gateway_health_reports_pool_counters(snapshot):
    with ReplicaSet(lambda index: ShardedScorer(snapshot, n_shards=2),
                    n_replicas=1) as replicas:
        with ServingClient(replicas.addresses) as client:
            client.top_n(0, n=3)
            health = client.health()
            stats = health["stats"]
            assert stats["pool_spawns"] == 1
            assert stats["pool_respawns"] == 0
            assert stats["pool_worker_deaths"] == 0
            assert stats["pool_registration_failures"] == 0
            # Kill a worker: the next request errors, the one after is
            # served by a respawned pool — and the counters say so.
            replicas.replicas[0].service._workers[0][0].terminate()
            replicas.replicas[0].service._workers[0][0].join(timeout=5.0)
            with pytest.raises(NetError):
                client.top_n(0, n=3)
            assert len(client.top_n(0, n=3)) == 3
            stats = client.health()["stats"]
            assert stats["pool_respawns"] == 1
            assert stats["pool_worker_deaths"] >= 1


# ---------------------------------------------------------------------------
# handshake and framing over a raw socket
# ---------------------------------------------------------------------------

def _raw_exchange(address, payload: bytes) -> Frame:
    with socket.create_connection(address, timeout=10.0) as sock:
        sock.settimeout(10.0)
        sock.sendall(payload)
        decoder = FrameDecoder()
        while True:
            data = sock.recv(1 << 16)
            if not data:
                raise ConnectionError("closed without a reply")
            frames = decoder.feed(data)
            if frames:
                return frames[0]


def test_cross_version_handshake_is_refused(replica_set):
    address = replica_set.addresses[0]
    reply = _raw_exchange(address, encode_frame(
        Frame("hello", {"version": PROTOCOL_VERSION + 7})))
    assert reply.is_error
    assert "not supported" in reply.payload["message"]
    assert reply.payload["server_version"] == PROTOCOL_VERSION


def test_garbage_bytes_get_an_error_frame_and_a_closed_connection(
        replica_set):
    reply = _raw_exchange(replica_set.addresses[0], b"\x00" * 64)
    assert reply.is_error and "magic" in reply.payload["message"]


def test_request_before_hello_is_refused(replica_set):
    reply = _raw_exchange(replica_set.addresses[0], encode_frame(
        Frame("top_n", {"user": 0, "n": 3})))
    assert reply.is_error and "handshake" in reply.payload["message"]


def test_request_ids_are_echoed(replica_set):
    wire = encode_frame(Frame("hello", {"version": PROTOCOL_VERSION}))
    wire += encode_frame(Frame("top_n", {"user": 0, "n": 3, "id": 41}))
    with socket.create_connection(replica_set.addresses[0],
                                  timeout=10.0) as sock:
        sock.settimeout(10.0)
        sock.sendall(wire)
        decoder = FrameDecoder()
        frames = []
        while len(frames) < 2:
            frames += decoder.feed(sock.recv(1 << 16))
    assert frames[0].payload["version"] == PROTOCOL_VERSION
    assert frames[1].payload["id"] == 41


# ---------------------------------------------------------------------------
# wire encodings and pipelining
# ---------------------------------------------------------------------------

def test_json_and_binary_encodings_serve_identical_bits(replica_set,
                                                        reference):
    """Both negotiated encodings, same bytes out — ties included."""
    with ServingClient(replica_set.addresses, binary=False) as json_client, \
            ServingClient(replica_set.addresses, binary=True) as bin_client:
        for user in (0, 2, 17, N_USERS - 1):
            expected = reference.top_n(user, n=8)
            _assert_same_recommendation(expected,
                                        json_client.top_n(user, n=8))
            _assert_same_recommendation(expected,
                                        bin_client.top_n(user, n=8))


def test_predict_batch_over_the_wire_both_encodings(replica_set, reference):
    users = np.array([0, 1, 2, 17, 2])
    items = np.array([3, 5, 1, 30, 35])
    expected = reference.predict_batch(users, items)
    for binary in (False, True):
        with ServingClient(replica_set.addresses, binary=binary) as client:
            served = client.predict_batch(users, items)
            assert served.dtype == np.float64
            assert served.tobytes() == expected.tobytes()


def test_pipelined_top_n_matches_sequential_bit_for_bit(replica_set,
                                                        reference):
    users = list(range(0, N_USERS, 3)) + [2, 2]  # duplicates served too
    for binary in (False, True):
        with ServingClient(replica_set.addresses, binary=binary) as client:
            served = client.top_n_pipelined(users, n=6, max_in_flight=8)
        assert len(served) == len(users)
        for user, recommendation in zip(users, served):
            _assert_same_recommendation(reference.top_n(user, n=6),
                                        recommendation)


def test_pipelined_invalid_user_raises_after_the_window_drains(replica_set):
    with ServingClient(replica_set.addresses) as client:
        with pytest.raises(NetError, match="1 of 3 pipelined"):
            client.top_n_pipelined([0, N_USERS + 9, 2], n=3)
        # The connection is still in sync afterwards.
        assert len(client.top_n(0, n=3)) == 3
        assert client.n_failovers == 0


def test_async_pipelined_top_n_matches_sequential(replica_set, reference):
    from repro.serving.net import AsyncServingClient

    users = list(range(0, N_USERS, 5))

    async def scenario():
        client = AsyncServingClient(replica_set.addresses)
        try:
            return await client.top_n_pipelined(users, n=6, max_in_flight=4)
        finally:
            await client.close()

    served = asyncio.run(scenario())
    for user, recommendation in zip(users, served):
        _assert_same_recommendation(reference.top_n(user, n=6),
                                    recommendation)


def test_client_consumes_two_frames_from_one_recv():
    """One socket read completing two frames must not drop the second."""
    left, right = socket.socketpair()
    try:
        wire = encode_frame(Frame("ok", {"id": 0, "user": 1}))
        wire += encode_frame(Frame("ok", {"id": 1, "user": 2}))
        left.sendall(wire)
        left.close()  # any further recv would see EOF and raise
        connection = _SyncConnection(right)
        first = ServingClient._next_frame(connection)
        second = ServingClient._next_frame(connection)
        assert first.payload["id"] == 0
        assert second.payload["id"] == 1
    finally:
        right.close()


# ---------------------------------------------------------------------------
# cross-user query fusion
# ---------------------------------------------------------------------------

def test_fused_top_n_is_bit_identical_to_unfused(snapshot, reference):
    """The acceptance criterion: fusion changes batching, never bits.

    A storm of concurrent single-user requests against a fused server
    must produce responses bit-identical (items and score bytes, exact
    ties included) to the unfused single-user path.
    """
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, fuse_window_ms=5.0) as replicas:
        results: dict = {}
        failures: list = []
        lock = threading.Lock()

        def storm(offset: int) -> None:
            try:
                with ServingClient(replicas.addresses) as client:
                    for user in range(offset, N_USERS, 4):
                        served = client.top_n(user, n=7)
                        with lock:
                            results[user] = served
            except Exception as error:  # noqa: BLE001
                with lock:
                    failures.append(error)

        threads = [threading.Thread(target=storm, args=(offset,))
                   for offset in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures, failures[:3]
        fuser = replicas.replicas[0].server.fuser
        stats = fuser.stats()

    assert len(results) == N_USERS  # every user asked exactly once
    for user, served in results.items():
        _assert_same_recommendation(reference.top_n(user, n=7), served)
    # Fusion actually happened: fewer windows than requests.
    assert stats["fusion_requests"] == len(results)
    assert 0 < stats["fusion_windows"] < stats["fusion_requests"]
    assert stats["fusion_max_window"] >= 2


def test_fused_bad_request_cannot_poison_the_window(snapshot, reference):
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, fuse_window_ms=20.0) as replicas:
        outcomes: dict = {}

        def one(user: int) -> None:
            with ServingClient(replicas.addresses) as client:
                try:
                    outcomes[user] = client.top_n(user, n=5)
                except NetError as error:
                    outcomes[user] = error

        threads = [threading.Thread(target=one, args=(user,))
                   for user in (2, N_USERS + 9, 7)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)

    assert isinstance(outcomes[N_USERS + 9], NetError)
    for user in (2, 7):
        _assert_same_recommendation(reference.top_n(user, n=5),
                                    outcomes[user])


def test_fusion_deduplicates_same_user_in_one_window(snapshot, reference):
    # A pipelined burst lands in one socket read, so the duplicates are
    # co-decoded and join one fused window deterministically (with eager
    # dispatch, requests on separate connections may each go out alone).
    with ReplicaSet(lambda index: PredictionService(snapshot),
                    n_replicas=1, fuse_window_ms=25.0) as replicas:
        with ServingClient(replicas.addresses) as client:
            results = client.top_n_pipelined([11] * 8, n=5)
        stats = replicas.replicas[0].server.fuser.stats()

    assert len(results) == 8
    for served in results:
        _assert_same_recommendation(reference.top_n(11, n=5), served)
    assert stats["fusion_deduplicated"] >= 1


# ---------------------------------------------------------------------------
# graceful drain
# ---------------------------------------------------------------------------

def test_stop_drains_and_refuses_new_connections(snapshot, reference):
    replicas = ReplicaSet(lambda index: PredictionService(snapshot),
                          n_replicas=1)
    replicas.start()
    address = replicas.addresses[0]
    client = ServingClient([address])
    _assert_same_recommendation(reference.top_n(3, n=5),
                                client.top_n(3, n=5))
    replicas.stop()
    # The idle cached connection was woken and closed by the drain; a
    # fresh connect is refused outright.
    with pytest.raises(NetError):
        client.top_n(3, n=5)
    client.close()
    # Stopping again is a no-op.
    replicas.stop()
