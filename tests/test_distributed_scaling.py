"""Shape tests for the strong-scaling performance model (Figures 4 and 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.scaling_workload import make_scaling_workload
from repro.distributed.scaling import ScalingConfig, strong_scaling_study
from repro.mpi.network import ClusterSpec, NetworkModel


@pytest.fixture(scope="module")
def workload():
    """A mid-size structural workload (seconds to model, minutes saved)."""
    return make_scaling_workload(n_users=12_000, n_movies=2_400,
                                 n_ratings=400_000, seed=5)


@pytest.fixture(scope="module")
def study(workload):
    config = ScalingConfig(
        num_latent=32,
        buffer_capacity=128,
        cluster=ClusterSpec(cores_per_node=16, rack_size=8,
                            cache_bytes=2 * 1024 * 1024, cache_speedup=1.3),
        network=NetworkModel(intra_bandwidth=1.8e9, inter_bandwidth=0.7e9,
                             uplink_bandwidth=4e9),
    )
    return strong_scaling_study(workload, node_counts=(1, 2, 4, 8, 16, 32),
                                config=config)


class TestStrongScalingShape:
    def test_points_cover_requested_node_counts(self, study):
        assert [p.n_nodes for p in study.points] == [1, 2, 4, 8, 16, 32]
        assert all(p.n_cores == 16 * p.n_nodes for p in study.points)

    def test_throughput_increases_within_one_rack(self, study):
        """Scaling should be good while the allocation fits one rack."""
        in_rack = [p for p in study.points if p.n_nodes <= 8]
        throughputs = [p.throughput for p in in_rack]
        assert throughputs == sorted(throughputs)
        assert throughputs[-1] > 4.0 * throughputs[0]

    def test_efficiency_high_inside_rack_then_degrades(self, study):
        eff = {p.n_nodes: p.parallel_efficiency for p in study.points}
        assert eff[1] == pytest.approx(1.0)
        assert eff[2] > 0.8
        # Significant degradation once the allocation spans several racks.
        assert eff[32] < 0.6 * eff[8]

    def test_single_node_has_no_communication(self, study):
        point = study.point(1)
        assert point.messages_per_iteration == 0
        assert point.bytes_per_iteration == 0.0
        assert point.breakdown_fractions()["compute"] == pytest.approx(1.0)

    def test_communication_share_grows_with_nodes(self, study):
        shares = [p.breakdown_fractions()["communicate"] for p in study.points]
        assert shares[0] == pytest.approx(0.0, abs=1e-9)
        assert shares[-1] > shares[1]
        assert shares[-1] > 0.2

    def test_breakdown_fractions_sum_to_one(self, study):
        for point in study.points:
            assert sum(point.breakdown_fractions().values()) == pytest.approx(1.0)

    def test_messages_and_bytes_grow_with_nodes(self, study):
        messages = [p.messages_per_iteration for p in study.points]
        assert messages[-1] > messages[1] > 0

    def test_cache_factor_grows_as_partitions_shrink(self, study):
        factors = [p.cache_factor_mean for p in study.points]
        assert factors[-1] >= factors[0]

    def test_tables_render(self, study):
        fig4 = study.to_table().render()
        fig5 = study.breakdown_table().render()
        assert "parallel efficiency" in fig4
        assert "communicate" in fig5
        assert study.point(8).n_nodes == 8
        with pytest.raises(KeyError):
            study.point(999)


class TestScalingOptions:
    def test_overlap_helps(self, workload):
        base = ScalingConfig(
            num_latent=32,
            cluster=ClusterSpec(rack_size=8, cache_bytes=2 * 1024 * 1024),
            network=NetworkModel(intra_bandwidth=1.0e9, inter_bandwidth=0.5e9),
        )
        overlap = strong_scaling_study(workload, node_counts=(8,), config=base)
        no_overlap_config = ScalingConfig(**{**base.__dict__,
                                             "overlap_communication": False})
        no_overlap = strong_scaling_study(workload, node_counts=(8,),
                                          config=no_overlap_config)
        assert overlap.point(8).throughput >= no_overlap.point(8).throughput

    def test_scheduler_and_bound_paths_agree_roughly(self, workload):
        base = dict(num_latent=32,
                    cluster=ClusterSpec(rack_size=8, cache_bytes=2 * 1024 * 1024))
        exact = strong_scaling_study(
            workload, node_counts=(4,),
            config=ScalingConfig(schedule_node_compute=True, **base))
        approx = strong_scaling_study(
            workload, node_counts=(4,),
            config=ScalingConfig(schedule_node_compute=False, **base))
        ratio = exact.point(4).throughput / approx.point(4).throughput
        assert 0.7 < ratio < 1.3

    def test_larger_buffers_mean_fewer_messages(self, workload):
        small = strong_scaling_study(
            workload, node_counts=(8,),
            config=ScalingConfig(buffer_capacity=16,
                                 cluster=ClusterSpec(rack_size=8)))
        large = strong_scaling_study(
            workload, node_counts=(8,),
            config=ScalingConfig(buffer_capacity=512,
                                 cluster=ClusterSpec(rack_size=8)))
        assert large.point(8).messages_per_iteration < \
            small.point(8).messages_per_iteration
        assert large.point(8).throughput >= small.point(8).throughput

    def test_invalid_node_counts(self, workload):
        with pytest.raises(Exception):
            strong_scaling_study(workload, node_counts=(0, 2))

    def test_baseline_node_override(self, workload):
        study = strong_scaling_study(workload, node_counts=(2, 4),
                                     config=ScalingConfig(
                                         cluster=ClusterSpec(rack_size=8)),
                                     baseline_nodes=2)
        assert study.point(2).parallel_efficiency == pytest.approx(1.0)
