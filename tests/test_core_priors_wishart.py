"""Unit tests for the BPMF priors and Normal–Wishart sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.priors import BPMFConfig, GaussianPrior, NormalWishartPrior
from repro.core.wishart import (
    normal_wishart_posterior,
    normal_wishart_posterior_from_stats,
    sample_hyperparameters,
    sample_normal_wishart,
    sample_wishart,
)
from repro.utils.validation import ValidationError


class TestGaussianPrior:
    def test_standard(self):
        prior = GaussianPrior.standard(4)
        np.testing.assert_array_equal(prior.mean, np.zeros(4))
        np.testing.assert_array_equal(prior.precision, np.eye(4))
        assert prior.num_latent == 4

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            GaussianPrior(mean=np.zeros((2, 2)), precision=np.eye(2))
        with pytest.raises(ValidationError):
            GaussianPrior(mean=np.zeros(3), precision=np.eye(2))

    def test_copy_is_deep(self):
        prior = GaussianPrior.standard(3)
        clone = prior.copy()
        clone.mean[0] = 5.0
        assert prior.mean[0] == 0.0


class TestNormalWishartPrior:
    def test_uninformative_defaults(self):
        prior = NormalWishartPrior.uninformative(5)
        assert prior.nu0 == 5.0
        assert prior.beta0 == 2.0
        np.testing.assert_array_equal(prior.W0, np.eye(5))

    def test_nu0_lower_bound(self):
        with pytest.raises(ValidationError):
            NormalWishartPrior(mu0=np.zeros(4), beta0=1.0, W0=np.eye(4), nu0=3.0)

    def test_shape_checks(self):
        with pytest.raises(ValidationError):
            NormalWishartPrior(mu0=np.zeros(3), beta0=1.0, W0=np.eye(4), nu0=4.0)
        with pytest.raises(ValidationError):
            NormalWishartPrior(mu0=np.zeros(3), beta0=-1.0, W0=np.eye(3), nu0=3.0)


class TestBPMFConfig:
    def test_defaults_build_hyperpriors(self):
        config = BPMFConfig(num_latent=8)
        assert config.user_hyperprior.num_latent == 8
        assert config.movie_hyperprior.num_latent == 8
        assert config.total_iterations == config.burn_in + config.n_samples

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            BPMFConfig(num_latent=4,
                       user_hyperprior=NormalWishartPrior.uninformative(5))

    def test_invalid_values(self):
        with pytest.raises(Exception):
            BPMFConfig(num_latent=0)
        with pytest.raises(Exception):
            BPMFConfig(alpha=-1.0)
        with pytest.raises(Exception):
            BPMFConfig(burn_in=-1)


class TestSampleWishart:
    def test_output_is_symmetric_positive_definite(self, rng):
        scale = np.eye(4)
        sample = sample_wishart(scale, dof=6.0, rng=rng)
        np.testing.assert_allclose(sample, sample.T, atol=1e-12)
        assert (np.linalg.eigvalsh(sample) > 0).all()

    def test_mean_is_dof_times_scale(self):
        rng = np.random.default_rng(0)
        scale = np.array([[2.0, 0.3], [0.3, 1.0]])
        dof = 7.0
        samples = [sample_wishart(scale, dof, rng) for _ in range(4000)]
        np.testing.assert_allclose(np.mean(samples, axis=0), dof * scale, rtol=0.08)

    def test_deterministic_given_seed(self):
        a = sample_wishart(np.eye(3), 5.0, rng=42)
        b = sample_wishart(np.eye(3), 5.0, rng=42)
        np.testing.assert_array_equal(a, b)

    def test_dof_below_dimension_rejected(self):
        with pytest.raises(ValidationError):
            sample_wishart(np.eye(4), 3.0)

    def test_non_square_scale_rejected(self):
        with pytest.raises(ValidationError):
            sample_wishart(np.ones((2, 3)), 4.0)

    def test_matches_scipy_moments(self):
        """Cross-check second moments against scipy's Wishart."""
        from scipy.stats import wishart as scipy_wishart
        scale = np.array([[1.5, 0.2], [0.2, 0.8]])
        dof = 6.0
        rng = np.random.default_rng(1)
        ours = np.array([sample_wishart(scale, dof, rng) for _ in range(3000)])
        theirs = scipy_wishart(df=dof, scale=scale).rvs(size=3000, random_state=2)
        np.testing.assert_allclose(ours.mean(axis=0), theirs.mean(axis=0), rtol=0.1)
        np.testing.assert_allclose(ours.std(axis=0), theirs.std(axis=0), rtol=0.15)


class TestSampleNormalWishart:
    def test_returns_valid_gaussian_prior(self, rng):
        prior = NormalWishartPrior.uninformative(5)
        draw = sample_normal_wishart(prior, rng)
        assert draw.num_latent == 5
        assert (np.linalg.eigvalsh(draw.precision) > 0).all()

    def test_mean_concentrates_with_large_beta0(self):
        rng = np.random.default_rng(0)
        prior = NormalWishartPrior(mu0=np.full(3, 2.0), beta0=1e6,
                                   W0=np.eye(3), nu0=10.0)
        draws = np.array([sample_normal_wishart(prior, rng).mean for _ in range(200)])
        np.testing.assert_allclose(draws.mean(axis=0), np.full(3, 2.0), atol=0.05)


class TestNormalWishartPosterior:
    def test_posterior_counts(self):
        prior = NormalWishartPrior.uninformative(3)
        factors = np.random.default_rng(0).normal(size=(50, 3))
        posterior = normal_wishart_posterior(factors, prior)
        assert posterior.beta0 == pytest.approx(prior.beta0 + 50)
        assert posterior.nu0 == pytest.approx(prior.nu0 + 50)

    def test_posterior_mean_shrinks_towards_data(self):
        prior = NormalWishartPrior.uninformative(2)
        factors = np.full((1000, 2), 5.0) + np.random.default_rng(0).normal(
            scale=0.1, size=(1000, 2))
        posterior = normal_wishart_posterior(factors, prior)
        np.testing.assert_allclose(posterior.mu0, [5.0, 5.0], atol=0.1)

    def test_zero_rows_returns_prior(self):
        prior = NormalWishartPrior.uninformative(3)
        assert normal_wishart_posterior(np.empty((0, 3)), prior) is prior

    def test_dimension_mismatch(self):
        prior = NormalWishartPrior.uninformative(3)
        with pytest.raises(ValidationError):
            normal_wishart_posterior(np.zeros((5, 4)), prior)

    def test_posterior_precision_reflects_data_covariance(self):
        """Tight data -> large posterior precision expectation."""
        prior = NormalWishartPrior.uninformative(2)
        rng = np.random.default_rng(1)
        tight = rng.normal(scale=0.05, size=(500, 2))
        loose = rng.normal(scale=5.0, size=(500, 2))
        post_tight = normal_wishart_posterior(tight, prior)
        post_loose = normal_wishart_posterior(loose, prior)
        # E[Lambda] = nu * W; compare the trace of W.
        assert np.trace(post_tight.W0) > np.trace(post_loose.W0)


class TestPosteriorFromStats:
    def test_matches_centered_computation(self):
        prior = NormalWishartPrior.uninformative(4)
        factors = np.random.default_rng(3).normal(size=(120, 4))
        direct = normal_wishart_posterior(factors, prior)
        from_stats = normal_wishart_posterior_from_stats(
            factors.shape[0], factors.sum(axis=0), factors.T @ factors, prior)
        np.testing.assert_allclose(from_stats.mu0, direct.mu0, atol=1e-10)
        np.testing.assert_allclose(from_stats.W0, direct.W0, atol=1e-8)
        assert from_stats.beta0 == pytest.approx(direct.beta0)
        assert from_stats.nu0 == pytest.approx(direct.nu0)

    def test_partial_sums_combine_like_full_matrix(self):
        """Summing per-rank statistics equals the single-matrix posterior."""
        prior = NormalWishartPrior.uninformative(3)
        rng = np.random.default_rng(4)
        chunks = [rng.normal(size=(n, 3)) for n in (10, 25, 7)]
        full = np.vstack(chunks)
        n = sum(c.shape[0] for c in chunks)
        total_sum = sum((c.sum(axis=0) for c in chunks), start=np.zeros(3))
        total_outer = sum((c.T @ c for c in chunks), start=np.zeros((3, 3)))
        combined = normal_wishart_posterior_from_stats(n, total_sum, total_outer, prior)
        direct = normal_wishart_posterior(full, prior)
        np.testing.assert_allclose(combined.W0, direct.W0, atol=1e-8)

    def test_zero_count_returns_prior(self):
        prior = NormalWishartPrior.uninformative(3)
        out = normal_wishart_posterior_from_stats(0, np.zeros(3), np.zeros((3, 3)), prior)
        assert out is prior

    def test_bad_shapes_rejected(self):
        prior = NormalWishartPrior.uninformative(3)
        with pytest.raises(ValidationError):
            normal_wishart_posterior_from_stats(5, np.zeros(2), np.zeros((3, 3)), prior)
        with pytest.raises(ValidationError):
            normal_wishart_posterior_from_stats(-1, np.zeros(3), np.zeros((3, 3)), prior)


class TestSampleHyperparameters:
    def test_recovers_generating_mean(self):
        """The hyperparameter Gibbs step should track the factor population."""
        rng = np.random.default_rng(0)
        true_mean = np.array([1.0, -2.0, 0.5])
        factors = rng.normal(loc=true_mean, scale=0.3, size=(2000, 3))
        prior = NormalWishartPrior.uninformative(3)
        draws = np.array([sample_hyperparameters(factors, prior, rng).mean
                          for _ in range(50)])
        np.testing.assert_allclose(draws.mean(axis=0), true_mean, atol=0.1)

    def test_precision_scale_tracks_factor_spread(self):
        rng = np.random.default_rng(1)
        prior = NormalWishartPrior.uninformative(2)
        tight = rng.normal(scale=0.1, size=(500, 2))
        loose = rng.normal(scale=3.0, size=(500, 2))
        precision_tight = sample_hyperparameters(tight, prior, rng).precision
        precision_loose = sample_hyperparameters(loose, prior, rng).precision
        assert np.trace(precision_tight) > np.trace(precision_loose)
