"""End-to-end integration tests across the public API."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

import repro
from repro import (
    BPMFConfig,
    DistributedGibbsSampler,
    DistributedOptions,
    GibbsSampler,
    MulticoreGibbsSampler,
    available_datasets,
    load_dataset,
    make_chembl_like,
    run_als,
    run_sgd,
)


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__ == "1.0.0"
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_registry_datasets_all_loadable(self):
        for name in available_datasets():
            if name.endswith("tiny"):
                ratings, split = load_dataset(name)
                assert ratings.nnz > 0
                assert split.train.nnz > 0


class TestEndToEndRecommendationPipeline:
    """The full workflow a downstream user would run."""

    def test_chembl_like_pipeline_all_samplers_agree(self):
        data = make_chembl_like(scale=400, seed=3, noise_std=0.3, value_spread=2.0)
        # Standard preprocessing for BPMF's zero-mean factor priors: centre
        # the activities on the training mean and add it back at prediction.
        from repro.sparse.csr import RatingMatrix
        from repro.sparse.split import RatingSplit
        global_mean = data.split.train.mean_rating()
        users, movies, values = data.split.train.triplets()
        train = RatingMatrix.from_arrays(data.ratings.n_users, data.ratings.n_movies,
                                         users, movies, values - global_mean)
        split = RatingSplit(train=train,
                            test_users=data.split.test_users,
                            test_movies=data.split.test_movies,
                            test_values=data.split.test_values - global_mean)
        config = BPMFConfig(num_latent=4, burn_in=4, n_samples=8, alpha=3.0)

        sequential = GibbsSampler(config).run(split.train, split, seed=0)
        multicore = MulticoreGibbsSampler(config).run(split.train, split, seed=0)
        distributed, info = DistributedGibbsSampler(
            config, DistributedOptions(n_ranks=3, hyper_mode="gather")
        ).run(split.train, split, seed=0)

        assert multicore.final_rmse == pytest.approx(sequential.final_rmse)
        assert distributed.final_rmse == pytest.approx(sequential.final_rmse)
        assert info.n_messages > 0

        # The fitted model must beat the constant-mean predictor.
        mean_rmse = float(np.sqrt(np.mean(split.test_values ** 2)))
        assert sequential.final_rmse < mean_rmse

    def test_bpmf_and_baselines_on_same_split(self, small_dataset):
        config = BPMFConfig(num_latent=5, burn_in=5, n_samples=8, alpha=8.0)
        bpmf = GibbsSampler(config).run(small_dataset.split.train,
                                        small_dataset.split, seed=0)
        als = run_als(small_dataset.split.train, small_dataset.split,
                      num_latent=5, n_iterations=10, regularization=0.05, seed=0)
        sgd = run_sgd(small_dataset.split.train, small_dataset.split,
                      num_latent=5, n_epochs=10, seed=0)
        # All three learn something; BPMF is competitive with the tuned baselines.
        for result in (bpmf.final_rmse, als.final_rmse, sgd.final_rmse):
            assert result < 1.0
        assert bpmf.final_rmse < 1.3 * min(als.final_rmse, sgd.final_rmse)


class TestCommandLine:
    def test_bench_module_lists_experiments(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--list"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0
        assert "fig4" in completed.stdout

    def test_bench_module_rejects_unknown_experiment(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.bench", "not-an-experiment"],
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 2
        assert "unknown" in completed.stderr
